package sim

// Checkpoint/RestoreInto implement fork-at-injection prefix sharing: a
// profile run's engine state is captured at a quiescent point and later
// restored into fresh engines, one per injected run that shares the
// profile prefix. The capture is declarative rather than a byte copy of
// goroutine stacks -- Go gives no way to snapshot a parked goroutine --
// so a checkpoint is only valid when every runnable process is parked at
// a self-describing park site (SleepQ/RecvQ with a tag) and the event
// queue holds only re-creatable value events (timer wakes and plain
// message deliveries, no pending After closures and no in-flight RPC
// envelopes, whose reply-mailbox pointers cannot be remapped).
//
// The restore side is a three-step session: RestoreInto primes a fresh
// engine with clock, RNG, fault surface, and counters; the system then
// re-creates its mailboxes (in original creation order, so ids line up)
// and Adopts each runnable process with a rebuilt body; Finish replants
// mailbox queues and waiters, re-inserts the captured events with their
// original sequence numbers, and verifies nothing was missed. A restored
// engine then continues byte-identically to the original: same event
// order, same RNG stream, same virtual timestamps, same event counts.
//
// Contracts a Checkpointable system must honour (violations either fail
// Checkpoint with ErrNotQuiescent or fail Finish with a hard error; the
// harness treats both as "run from scratch instead", so they cost
// performance, never correctness):
//   - park only in SleepQ/RecvQ at capture instants; loop bodies are
//     work-first so a body re-entered from the top at the wake instant
//     continues like the original;
//   - message bodies are plain values: no *Mailbox, *Proc, or other
//     engine references (sim.Req/sim.Resp are rejected mechanically),
//     and receivers treat them as immutable, since captured bodies are
//     shared by reference across every fork;
//   - restore re-creates mailboxes in original creation order and calls
//     only NewMailbox/Adopt before Finish -- no Spawn, After, or Send.

import (
	"errors"
	"fmt"
	"time"
)

// ErrNotQuiescent is wrapped by Checkpoint errors that mean "this instant
// is not capturable": some process is parked outside a declared quiescent
// site or the event queue holds non-recreatable work. Callers treat it as
// a skippable condition, not a failure.
var ErrNotQuiescent = errors.New("sim: engine not quiescent")

// notQ builds a Checkpoint validity error.
func notQ(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrNotQuiescent, fmt.Sprintf(format, args...))
}

// ckEvent is a captured pending event. Wakes reference their target by
// pid and deliveries their mailbox by id; both are remapped on restore.
type ckEvent struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	pid  int // evWake target
	gen  uint64
	mbID int // evDeliver target
	body interface{}
	src  string
}

// ckMailbox is a captured mailbox with pending content: its queued
// messages and the FIFO order of adoptable waiters.
type ckMailbox struct {
	id      int
	node    string
	name    string
	msgs    []interface{}
	waiters []int // pids, FIFO
}

// ckProc is a captured process record. Runnable processes are adopted on
// restore; dead ones (done, killed, or on a crashed node) exist only so
// their stale wake events can be re-inserted against a tombstone that
// skips identically.
type ckProc struct {
	pid      int
	node     string
	name     string
	runnable bool
	tag      string
	wakeGen  uint64
}

type ckHeld struct {
	mbID int
	body interface{}
}

// Checkpoint is a deep, self-contained copy of an Engine's dynamic state
// at a quiescent instant. It holds no pointers into the source engine
// (message bodies are shared by reference under the value-body contract),
// so it stays valid after the source engine runs on or is closed, and one
// checkpoint can seed any number of restored engines.
type Checkpoint struct {
	now           time.Duration
	seq           uint64
	executed      int
	rng           SourceState
	nextPID       int
	nextMailboxID int

	events    []ckEvent
	mailboxes []ckMailbox
	procs     []ckProc
	procByPID map[int]*ckProc

	partitions map[[2]string]bool
	paused     map[string]bool
	crashed    map[string]bool
	held       map[string][]ckHeld

	stackKeys []stackKey
}

// Now returns the virtual time the checkpoint was captured at.
func (ck *Checkpoint) Now() time.Duration { return ck.now }

// Events returns the cumulative processed-event count at capture.
func (ck *Checkpoint) Events() int { return ck.executed }

// SizeBytes estimates the checkpoint's retained memory. Message bodies
// are opaque interface values and accounted at a flat rate, so the
// estimate is for cache budgeting, not exact accounting.
func (ck *Checkpoint) SizeBytes() int {
	const (
		eventSz = 96
		boxSz   = 96
		msgSz   = 48
		procSz  = 96
		keySz   = 48
	)
	n := 256 + len(ck.events)*eventSz + len(ck.procs)*procSz + len(ck.stackKeys)*keySz
	for i := range ck.mailboxes {
		mb := &ck.mailboxes[i]
		n += boxSz + len(mb.msgs)*msgSz + len(mb.waiters)*8
	}
	n += (len(ck.partitions) + len(ck.paused) + len(ck.crashed)) * 48
	for _, hs := range ck.held {
		n += 48 + len(hs)*msgSz
	}
	return n
}

// Checkpoint captures the engine's state at the current instant. It must
// be called between Run calls (never from inside a simulated process) on
// an engine created with Options.Checkpointing. Errors wrapping
// ErrNotQuiescent mean the instant is not capturable and the caller
// should simply run on; any other error is a usage bug.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	switch {
	case e.running:
		return nil, errors.New("sim: Checkpoint during Run")
	case e.closed:
		return nil, errors.New("sim: Checkpoint after Close")
	case !e.checkpointing:
		return nil, errors.New("sim: engine not created with Options.Checkpointing")
	}

	ck := &Checkpoint{
		now:           e.now,
		seq:           e.seq,
		executed:      e.executed,
		rng:           e.src.Snapshot(),
		nextPID:       e.nextPID,
		nextMailboxID: e.nextMailboxID,
		procByPID:     make(map[int]*ckProc, len(e.procs)),
	}

	// Processes: every runnable process must be parked at a declared
	// quiescent site. Dead processes are captured as tombstone records so
	// their stale wakes replay with identical skip semantics.
	ck.procs = make([]ckProc, 0, len(e.procs))
	for _, p := range e.procs {
		dead := p.done || p.killed || e.crashed[p.node]
		if !dead && !p.started {
			return nil, notQ("process %s/%s (pid %d) spawned but not yet started", p.node, p.name, p.pid)
		}
		if !dead && p.parkTag == "" {
			return nil, notQ("process %s/%s (pid %d) parked outside SleepQ/RecvQ", p.node, p.name, p.pid)
		}
		ck.procs = append(ck.procs, ckProc{
			pid:      p.pid,
			node:     p.node,
			name:     p.name,
			runnable: !dead,
			tag:      p.parkTag,
			wakeGen:  p.wakeGen,
		})
	}
	for i := range ck.procs {
		ck.procByPID[ck.procs[i].pid] = &ck.procs[i]
	}

	// Events: only value events survive a capture. After closures cannot
	// be re-created and RPC envelopes embed reply-mailbox pointers.
	ck.events = make([]ckEvent, 0, e.events.len())
	for i := range e.events.ev {
		ev := &e.events.ev[i]
		switch ev.kind {
		case evApply:
			return nil, notQ("pending After closure at t=%s", ev.at)
		case evDeliver:
			if err := checkBody(ev.body); err != nil {
				return nil, err
			}
			ck.events = append(ck.events, ckEvent{
				at: ev.at, seq: ev.seq, kind: evDeliver,
				mbID: ev.mb.id, body: ev.body, src: ev.src,
			})
		case evWake:
			ck.events = append(ck.events, ckEvent{
				at: ev.at, seq: ev.seq, kind: evWake,
				pid: ev.proc.pid, gen: ev.gen,
			})
		}
	}

	// Mailboxes: capture queue contents and waiter order for every box
	// with pending state. Boxes that are empty and waiterless (completed
	// RPC reply boxes, idle channels) need no record -- the restore side
	// re-creates boxes by construction order and Finish checks ids.
	for _, mb := range e.mailboxes {
		if mb.Len() == 0 && len(mb.waiters) == 0 {
			continue
		}
		cm := ckMailbox{id: mb.id, node: mb.node, name: mb.name}
		for _, w := range mb.waiters {
			if w.done || w.killed || e.crashed[w.node] {
				// deliver() skips dead waiters without waking anyone;
				// omitting them from the capture is observationally
				// identical and keeps restore to adopted processes only.
				continue
			}
			cm.waiters = append(cm.waiters, w.pid)
		}
		if len(cm.waiters) == 0 {
			// With no live waiter, two kinds of queued content are garbage
			// that no process can ever observe, so the box is captured as
			// empty rather than poisoning every future capture:
			//   - a crashed node's backlog: everything that could drain it
			//     died with the node (systems only Recv node-locally);
			//   - an orphaned reply box: the Call timed out and moved on,
			//     then the late Resp arrived. Nothing holds the box.
			if e.crashed[mb.node] {
				continue
			}
			orphan := true
			for _, body := range mb.queue[mb.head:] {
				if _, isResp := body.(Resp); !isResp {
					orphan = false
					break
				}
			}
			if orphan {
				continue
			}
		}
		for _, body := range mb.queue[mb.head:] {
			if err := checkBody(body); err != nil {
				return nil, err
			}
			cm.msgs = append(cm.msgs, body)
		}
		ck.mailboxes = append(ck.mailboxes, cm)
	}

	// Fault surface and held deliveries.
	ck.partitions = copyMap(e.partitions)
	ck.paused = copyMap(e.paused)
	ck.crashed = copyMap(e.crashed)
	if len(e.held) > 0 {
		ck.held = make(map[string][]ckHeld, len(e.held))
		for node, hs := range e.held {
			out := make([]ckHeld, 0, len(hs))
			for _, h := range hs {
				if err := checkBody(h.body); err != nil {
					return nil, err
				}
				out = append(out, ckHeld{mbID: h.mb.id, body: h.body})
			}
			ck.held[node] = out
		}
	}

	// Interned stack keys: re-interning them on restore keeps hook
	// captures returning identical slices without rebuilding lazily.
	if len(e.stacks) > 0 {
		ck.stackKeys = make([]stackKey, 0, len(e.stacks))
		for k := range e.stacks {
			ck.stackKeys = append(ck.stackKeys, k)
		}
	}
	return ck, nil
}

// checkBody rejects message bodies that cannot cross a checkpoint.
func checkBody(body interface{}) error {
	switch body.(type) {
	case Req:
		return notQ("in-flight RPC request")
	case Resp:
		return notQ("in-flight RPC response")
	}
	return nil
}

func copyMap[K comparable](m map[K]bool) map[K]bool {
	if len(m) == 0 {
		return nil
	}
	out := make(map[K]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RestoreSession is the in-progress restoration of a Checkpoint into a
// fresh engine. Between RestoreInto and Finish the Checkpointable system
// re-creates its mailboxes and adopts its processes; Finish wires the
// captured dynamic state back up and validates completeness.
type RestoreSession struct {
	eng      *Engine
	ck       *Checkpoint
	adopted  map[int]*Proc
	finished bool
}

// RestoreInto primes a fresh engine with the checkpoint's clock, RNG
// stream, fault surface, counters, and interned stacks, and opens a
// restore session. The engine must be newly created (same Options as the
// captured engine, Checkpointing included) with no processes, mailboxes,
// or events.
func (ck *Checkpoint) RestoreInto(e *Engine) (*RestoreSession, error) {
	switch {
	case e.running || e.closed:
		return nil, errors.New("sim: restore into a running or closed engine")
	case !e.checkpointing:
		// Finish resolves captured mailbox ids against the registry, so
		// the target must track its mailboxes too.
		return nil, errors.New("sim: restore target must be created with Options.Checkpointing")
	case len(e.procs) != 0 || len(e.mailboxes) != 0 || e.events.len() != 0 || e.now != 0 || e.executed != 0:
		return nil, errors.New("sim: restore target must be a fresh engine")
	}
	e.now = ck.now
	e.seq = ck.seq
	e.executed = ck.executed
	e.src.Restore(ck.rng)
	e.partitions = copyMap(ck.partitions)
	e.paused = copyMap(ck.paused)
	e.crashed = copyMap(ck.crashed)
	for _, k := range ck.stackKeys {
		e.internStack(k.a, k.b, int(k.n))
	}
	return &RestoreSession{eng: e, ck: ck, adopted: make(map[int]*Proc, len(ck.procs))}, nil
}

// ParkTag returns the park-site tag the process carried at capture, so a
// system can dispatch to the right rotated body when a process parks at
// more than one site. ok is false for unknown or non-runnable pids.
func (s *RestoreSession) ParkTag(pid int) (tag string, ok bool) {
	rec := s.ck.procByPID[pid]
	if rec == nil || !rec.runnable {
		return "", false
	}
	return rec.tag, true
}

// Adopt re-creates the captured runnable process pid with a rebuilt body.
// The adopted process keeps its pid and wake generation; it has no
// goroutine until its first wake fires, at which point fn runs from the
// top -- the system's rotated body shape makes that equivalent to the
// original continuing from its park site.
func (s *RestoreSession) Adopt(pid int, fn func(p *Proc)) (*Proc, error) {
	if s.finished {
		return nil, errors.New("sim: Adopt after Finish")
	}
	rec := s.ck.procByPID[pid]
	if rec == nil {
		return nil, fmt.Errorf("sim: Adopt of unknown pid %d", pid)
	}
	if !rec.runnable {
		return nil, fmt.Errorf("sim: Adopt of dead process %s/%s (pid %d)", rec.node, rec.name, pid)
	}
	if _, dup := s.adopted[pid]; dup {
		return nil, fmt.Errorf("sim: pid %d adopted twice", pid)
	}
	p := &Proc{
		eng:     s.eng,
		pid:     pid,
		node:    rec.node,
		name:    rec.name,
		fn:      fn,
		resume:  make(chan wakeSignal),
		wakeGen: rec.wakeGen,
		parkTag: rec.tag,
	}
	s.eng.procs = append(s.eng.procs, p)
	s.adopted[pid] = p
	return p, nil
}

// Finish completes the restoration: it verifies every runnable process
// was adopted and no stray events were scheduled, replants mailbox queues
// and waiter lists, re-inserts the captured events with their original
// sequence numbers, and restores the held-delivery map and id counters.
// After Finish returns nil the engine is ready for Run.
func (s *RestoreSession) Finish() error {
	if s.finished {
		return errors.New("sim: Finish called twice")
	}
	s.finished = true
	e, ck := s.eng, s.ck

	if n := e.events.len(); n != 0 {
		return fmt.Errorf("sim: restore scheduled %d events before Finish (Spawn/After/Send are not allowed during restore)", n)
	}
	for i := range ck.procs {
		rec := &ck.procs[i]
		if rec.runnable && s.adopted[rec.pid] == nil {
			return fmt.Errorf("sim: runnable process %s/%s (pid %d, parked at %q) was not adopted", rec.node, rec.name, rec.pid, rec.tag)
		}
	}

	// The captured state is authoritative for every queue, including the
	// empty ones: a box with no captured record held nothing observable at
	// capture, so anything a re-creation constructor pre-seeded (a Mutex
	// delivers its token at construction) must go -- otherwise a token
	// that was captured in flight as an evDeliver would be doubled.
	byID := make(map[int]*Mailbox, len(e.mailboxes))
	for _, mb := range e.mailboxes {
		byID[mb.id] = mb
		mb.queue = mb.queue[:0]
		mb.head = 0
	}
	resolve := func(id int, what string) (*Mailbox, error) {
		mb := byID[id]
		if mb == nil {
			return nil, fmt.Errorf("sim: %s references mailbox id %d, which the system did not re-create", what, id)
		}
		return mb, nil
	}

	for i := range ck.mailboxes {
		cm := &ck.mailboxes[i]
		mb, err := resolve(cm.id, "captured queue")
		if err != nil {
			return err
		}
		if mb.node != cm.node || mb.name != cm.name {
			return fmt.Errorf("sim: mailbox id %d is %s/%s, captured as %s/%s (re-creation order mismatch)", cm.id, mb.node, mb.name, cm.node, cm.name)
		}
		mb.queue = append([]interface{}(nil), cm.msgs...)
		mb.head = 0
		for _, pid := range cm.waiters {
			p := s.adopted[pid]
			if p == nil {
				return fmt.Errorf("sim: mailbox %s/%s waiter pid %d not adopted", cm.node, cm.name, pid)
			}
			mb.waiters = append(mb.waiters, p)
		}
	}

	// Re-insert events with their original sequence numbers, bypassing
	// schedule() so e.seq stays at the captured counter. Wakes for dead
	// processes target a tombstone whose done flag makes Run skip them
	// while still counting the event, exactly like the original.
	tombs := make(map[int]*Proc)
	for i := range ck.events {
		ce := &ck.events[i]
		ev := event{at: ce.at, seq: ce.seq, kind: ce.kind}
		switch ce.kind {
		case evWake:
			p := s.adopted[ce.pid]
			if p == nil {
				p = tombs[ce.pid]
			}
			if p == nil {
				rec := ck.procByPID[ce.pid]
				if rec == nil {
					return fmt.Errorf("sim: captured wake for unknown pid %d", ce.pid)
				}
				p = &Proc{eng: e, pid: rec.pid, node: rec.node, name: rec.name, started: true, done: true, wakeGen: rec.wakeGen}
				tombs[ce.pid] = p
			}
			ev.proc, ev.gen = p, ce.gen
		case evDeliver:
			mb, err := resolve(ce.mbID, "captured delivery")
			if err != nil {
				return err
			}
			ev.mb, ev.body, ev.src = mb, ce.body, ce.src
		}
		e.events.push(ev)
	}

	if len(ck.held) > 0 {
		e.held = make(map[string][]heldDelivery, len(ck.held))
		for node, hs := range ck.held {
			out := make([]heldDelivery, 0, len(hs))
			for _, h := range hs {
				mb, err := resolve(h.mbID, "held delivery")
				if err != nil {
					return err
				}
				out = append(out, heldDelivery{mb: mb, body: h.body})
			}
			e.held[node] = out
		}
	}

	e.nextPID = ck.nextPID
	e.nextMailboxID = ck.nextMailboxID
	e.seq = ck.seq

	// A restored engine is never checkpointed again, so stop tracking
	// mailboxes: this keeps a fork from pinning every reply mailbox it
	// allocates for the rest of its run. Tracking state has no observable
	// effect on the schedule, so dropping it preserves byte-identity.
	e.checkpointing = false
	e.mailboxes = nil
	return nil
}
