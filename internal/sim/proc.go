package sim

import (
	"errors"
	"math/rand"
	"time"
)

// ErrTimeout is returned by Call when no response arrives in time.
var ErrTimeout = errors.New("sim: rpc timeout")

// ErrCrashed is returned by Call when the caller can immediately tell the
// destination node is gone (same-node fast path); remote callers observe
// ErrTimeout instead, as in a real network.
var ErrCrashed = errors.New("sim: destination crashed")

// errKilled is the panic sentinel used to unwind process goroutines when
// the engine shuts them down.
var errKilled = errors.New("sim: process killed")

type wakeSignal struct {
	kill bool
}

// Proc is a simulated process: a goroutine that runs under the engine's
// cooperative single-runner discipline. All methods must be called from
// the process's own body.
type Proc struct {
	eng    *Engine
	pid    int
	node   string
	name   string
	fn     func(p *Proc)
	resume chan wakeSignal

	started bool
	done    bool
	killed  bool
	wakeGen uint64

	// parkTag names the declarative park site while the process is blocked
	// in SleepQ or RecvQ, and is empty whenever the process is running or
	// blocked in a non-checkpointable operation (plain Sleep/Recv/Call).
	// Checkpoints are only valid when every runnable process carries a
	// non-empty parkTag: the tag is how a Checkpointable system knows which
	// rotated loop body to adopt for the process on restore.
	parkTag string

	// frames is the explicit call stack maintained by Enter/exit. The
	// injection layer reads it to capture 2-level calling context and the
	// per-frame local branch traces used by the compatibility check.
	frames []Frame

	// frameGen versions the frames slice (bumped on every push/pop) and
	// stackGen/stackCache memoise the last Stack() result against it, so
	// repeated fault activations in an unchanged calling context -- the
	// retry-storm hot path -- return the same interned slice.
	frameGen   uint64
	stackGen   uint64
	stackCache []string
}

// Frame is one entry of a process's explicit call stack.
type Frame struct {
	Fn string
	// Branches accumulates (branch id, outcome) pairs evaluated in this
	// frame since the frame was entered or since the innermost loop hook
	// last reset it. The compatibility check compares these.
	Branches []BranchEval
	// shared marks Branches as handed out by LocalBranches: the next
	// mutation must leave the shared backing array untouched
	// (copy-on-write), since captured occurrence states alias it.
	shared bool
}

// BranchEval records a monitored branch evaluation.
type BranchEval struct {
	ID    string
	Taken bool
}

func (p *Proc) run() {
	defer func() {
		r := recover()
		p.done = true
		if r != nil && r != errKilled {
			// Propagate user panics to the engine goroutine, where Run
			// re-raises them with process context.
			p.eng.fail = &procPanic{proc: p, val: r}
		}
		p.eng.parked <- struct{}{}
	}()
	sig := <-p.resume
	if sig.kill {
		panic(errKilled)
	}
	p.fn(p)
}

// yield parks the process and hands the runner token back to the engine.
func (p *Proc) yield() {
	p.eng.parked <- struct{}{}
	sig := <-p.resume
	if sig.kill || p.killed {
		panic(errKilled)
	}
}

// block registers a fresh wake generation, optionally arms a timeout wake,
// and parks. Returns after some wake targeted at the current generation.
func (p *Proc) block(timeout time.Duration) {
	p.wakeGen++
	if timeout >= 0 {
		p.eng.schedule(p.eng.now+timeout, evWake, p, p.wakeGen, nil)
	}
	p.yield()
}

// wakeNow schedules an immediate wake for the current generation. Used by
// mailboxes on delivery.
func (p *Proc) wakeNow() {
	p.eng.schedule(p.eng.now, evWake, p, p.wakeGen, nil)
}

// Node returns the node this process runs on.
func (p *Proc) Node() string { return p.node }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Now returns current virtual time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Rand returns the engine RNG (single-runner safe).
func (p *Proc) Rand() *rand.Rand { return p.eng.rng }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Sleep advances this process's local time by d.
func (p *Proc) Sleep(d time.Duration) {
	if p.killed {
		panic(errKilled)
	}
	if d <= 0 {
		return
	}
	p.wakeGen++
	p.eng.schedule(p.eng.now+d, evWake, p, p.wakeGen, nil)
	p.yield()
}

// ParkTag returns the declarative park-site tag if the process is parked
// in SleepQ or RecvQ, and "" otherwise.
func (p *Proc) ParkTag() string { return p.parkTag }

// SleepQ is Sleep at a declared quiescent park site: while parked the
// process carries tag, making it adoptable by Engine.Checkpoint. Loop
// bodies that park in SleepQ must be written work-first (work, then
// SleepQ at the bottom of the loop) so that a restored body entered from
// the top at the wake instant continues exactly like the original.
//
// SleepQ clears the innermost frame's local branch accumulator before
// parking: a restored body starts with an empty accumulator, so clearing
// it here keeps from-scratch and forked continuations byte-identical.
// The clear happens in every run (forked or not), so it never introduces
// divergence between the two.
func (p *Proc) SleepQ(d time.Duration, tag string) {
	if p.killed {
		panic(errKilled)
	}
	if d <= 0 {
		return
	}
	p.ResetLocalBranches()
	p.parkTag = tag
	p.wakeGen++
	p.eng.schedule(p.eng.now+d, evWake, p, p.wakeGen, nil)
	p.yield()
	p.parkTag = ""
}

// RecvQ is an infinite-timeout Recv at a declared quiescent park site:
// while parked the process carries tag and is adoptable by
// Engine.Checkpoint. Only the infinite-timeout form is checkpointable --
// a finite Recv deadline would have to be recomputed on restore, which a
// freshly entered body cannot do faithfully. Like SleepQ it clears the
// innermost frame's branch accumulator on entry (on the immediate-pop
// path too, so the clear point does not depend on queue occupancy).
func (p *Proc) RecvQ(mb *Mailbox, tag string) interface{} {
	if p.killed {
		panic(errKilled)
	}
	p.ResetLocalBranches()
	if mb.Len() > 0 {
		return mb.pop()
	}
	p.parkTag = tag
	for {
		mb.waiters = append(mb.waiters, p)
		p.block(-1)
		if mb.Len() > 0 {
			mb.removeWaiter(p)
			p.parkTag = ""
			return mb.pop()
		}
		// Spurious wake (message consumed by another pool worker).
		mb.removeWaiter(p)
	}
}

// Work models CPU-bound work of duration d. It is semantically identical
// to Sleep but documents intent: a worker draining a queue serialises all
// Work on itself, which is what makes queue length translate into latency
// and latency into timeouts -- the contention mechanics cascading-failure
// experiments rely on.
func (p *Proc) Work(d time.Duration) { p.Sleep(d) }

// Spawn starts a sibling process on the same node.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.eng.Spawn(p.node, name, fn)
}

// Enter pushes a named frame onto the explicit call stack and returns the
// matching pop. Use as: defer p.Enter("BlockReceiver")().
func (p *Proc) Enter(fn string) func() {
	p.frames = append(p.frames, Frame{Fn: fn})
	p.frameGen++
	depth := len(p.frames)
	return func() {
		if len(p.frames) >= depth {
			p.frames = p.frames[:depth-1]
			p.frameGen++
		}
	}
}

// Stack returns up to the two innermost frame names, outermost first,
// excluding nothing: [caller, callee] -- the "2-call-site sensitivity"
// context from the paper (§6.2). The result is interned per (caller,
// callee) pair and memoised against the frame generation: capturing the
// same calling context repeatedly allocates nothing. Callers must treat
// the returned slice as immutable.
func (p *Proc) Stack() []string {
	if p.stackCache != nil && p.stackGen == p.frameGen {
		return p.stackCache
	}
	n := len(p.frames)
	var a, b string
	switch {
	case n == 0:
	case n == 1:
		a = p.frames[0].Fn
	default:
		a, b = p.frames[n-2].Fn, p.frames[n-1].Fn
	}
	depth := n
	if depth > 2 {
		depth = 2
	}
	s := p.eng.internStack(a, b, depth)
	p.stackCache, p.stackGen = s, p.frameGen
	return s
}

// FullStack returns the entire explicit call stack, outermost first.
func (p *Proc) FullStack() []string {
	out := make([]string, len(p.frames))
	for i, f := range p.frames {
		out[i] = f.Fn
	}
	return out
}

// RecordBranch appends a branch evaluation to the innermost frame.
func (p *Proc) RecordBranch(id string, taken bool) {
	if len(p.frames) == 0 {
		p.frames = append(p.frames, Frame{Fn: p.name})
		p.frameGen++
	}
	f := &p.frames[len(p.frames)-1]
	if f.shared {
		// The current backing array is aliased by a captured occurrence
		// state: append into a fresh array instead of mutating it.
		fresh := make([]BranchEval, len(f.Branches), len(f.Branches)+4)
		copy(fresh, f.Branches)
		f.Branches = fresh
		f.shared = false
	}
	f.Branches = append(f.Branches, BranchEval{ID: id, Taken: taken})
}

// ResetLocalBranches clears the innermost frame's branch accumulator. Loop
// hooks call this at each iteration so occurrence states carry only the
// fault-happening iteration's trace (§6.2).
func (p *Proc) ResetLocalBranches() {
	if len(p.frames) == 0 {
		return
	}
	f := &p.frames[len(p.frames)-1]
	if f.shared {
		// Truncating in place would let future appends overwrite entries
		// still visible through a captured occurrence state.
		f.Branches = nil
		f.shared = false
		return
	}
	f.Branches = f.Branches[:0]
}

// LocalBranches returns the innermost frame's branch trace without
// copying. The slice is handed out copy-on-write: the frame's next
// mutation moves to a fresh backing array, so holders see a stable
// snapshot. Callers must treat the returned slice as immutable.
func (p *Proc) LocalBranches() []BranchEval {
	if len(p.frames) == 0 {
		return nil
	}
	f := &p.frames[len(p.frames)-1]
	if len(f.Branches) == 0 {
		return nil
	}
	f.shared = true
	return f.Branches[:len(f.Branches):len(f.Branches)]
}
