package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refHeap replay the seed-era event queue: a container/heap of
// pointers ordered by (at, seq). The 4-ary value queue must pop in exactly
// the same order.
type refEvent struct {
	at  time.Duration
	seq uint64
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestEventQueueMatchesContainerHeap drives the 4-ary queue and a
// container/heap reference through identical randomized push/pop
// interleavings (duplicate timestamps included, so tie-breaking by seq is
// exercised) and asserts the pop sequences are identical.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var q eventQueue
		var ref refHeap
		var seq uint64
		n := 1 + rng.Intn(200)
		for op := 0; op < n*3; op++ {
			if q.len() == 0 || rng.Intn(3) != 0 {
				// Push with a small time range to force plenty of ties.
				at := time.Duration(rng.Intn(20)) * time.Millisecond
				seq++
				q.push(event{at: at, seq: seq})
				heap.Push(&ref, &refEvent{at: at, seq: seq})
			} else {
				got := q.pop()
				want := heap.Pop(&ref).(*refEvent)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d: pop order diverged: got (%v, %d), want (%v, %d)",
						trial, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		for q.len() > 0 {
			got := q.pop()
			want := heap.Pop(&ref).(*refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d: drain order diverged: got (%v, %d), want (%v, %d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference heap not drained", trial)
		}
	}
}

// TestEventQueuePeekMatchesPop pins the horizon fast path: peek must
// always expose exactly the event the next pop returns.
func TestEventQueuePeekMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var q eventQueue
	for i := 0; i < 300; i++ {
		q.push(event{at: time.Duration(rng.Intn(50)) * time.Millisecond, seq: uint64(i + 1)})
	}
	var prev event
	for i := 0; q.len() > 0; i++ {
		top := *q.peek()
		got := q.pop()
		if got.at != top.at || got.seq != top.seq {
			t.Fatalf("peek (%v, %d) != pop (%v, %d)", top.at, top.seq, got.at, got.seq)
		}
		if i > 0 && (got.at < prev.at || (got.at == prev.at && got.seq < prev.seq)) {
			t.Fatalf("pop order not ascending: (%v, %d) after (%v, %d)", got.at, got.seq, prev.at, prev.seq)
		}
		prev = got
	}
}

// TestCrashClearsPausedState pins the CrashNode fix: crashing a paused
// node must clear its paused entry, so a later ResumeNode is a clean
// no-op (no held-delivery flush, no state-map leak).
func TestCrashClearsPausedState(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	mb := e.NewMailbox("n2", "inbox")
	var received int
	e.Spawn("n2", "receiver", func(p *Proc) {
		for {
			if _, ok := p.Recv(mb, time.Second); ok {
				received++
			} else {
				return
			}
		}
	})
	e.Spawn("n1", "sender", func(p *Proc) {
		p.Send(mb, "while-paused")
	})
	e.PauseNode("n2")
	e.Run(50 * time.Millisecond)
	e.CrashNode("n2")
	if e.paused["n2"] {
		t.Fatal("crashed node still marked paused")
	}
	// Resume after crash must not resurrect held deliveries.
	e.ResumeNode("n2")
	if len(e.held["n2"]) != 0 {
		t.Fatalf("held deliveries survived crash: %d", len(e.held["n2"]))
	}
	e.Run(5 * time.Second)
	e.Close()
	if received != 0 {
		t.Fatalf("crashed node received %d messages", received)
	}
}
