// Package sim implements a deterministic discrete-event simulator for
// distributed systems. It is the execution substrate on which the target
// systems in internal/systems run: every node, worker, queue, timer, RPC,
// and network fault is simulated against a virtual clock, so fault
// injection experiments are fast, reproducible, and seed-controlled.
//
// The engine uses a cooperative single-runner discipline: at any instant
// exactly one simulated process executes; all others are parked. Processes
// advance the virtual clock only through blocking operations (Sleep, Work,
// Recv, Call), which makes runs with equal seeds bit-for-bit identical.
//
// The building blocks: Engine (the event loop, clock, RNG, and network
// fault surface: partitions, pauses, crashes), Proc (a simulated process
// with an explicit call stack for the injection layer's 2-frame
// occurrence capture), Mailbox (unbounded FIFO message queues with
// Send/Recv/Call/Reply RPC conventions), and Mutex (a FIFO lock whose
// waiters park like any other blocked process). Target systems in
// internal/systems compose these into clusters of nodes, workers, and
// clients.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// StopReason reports why Engine.Run returned.
type StopReason int

const (
	// StopQuiesced means the event queue drained: no process has pending
	// work or timers. This is the normal end of a workload.
	StopQuiesced StopReason = iota
	// StopHorizon means the virtual-time horizon passed before the system
	// quiesced. Long-running services (heartbeat loops) always end here.
	StopHorizon
	// StopEventBudget means the event-count safety valve fired, which
	// usually indicates a runaway retry storm -- exactly the behaviour
	// cascading-failure experiments try to provoke.
	StopEventBudget
)

func (r StopReason) String() string {
	switch r {
	case StopQuiesced:
		return "quiesced"
	case StopHorizon:
		return "horizon"
	case StopEventBudget:
		return "event-budget"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// RunResult summarises a completed Engine.Run call.
type RunResult struct {
	Reason StopReason
	Now    time.Duration
	Events int
}

// LatencyFunc computes the one-way network latency for a message between
// two nodes. Implementations may draw jitter from rng; the engine calls it
// only from the single-runner context, so no locking is needed.
type LatencyFunc func(rng *rand.Rand, src, dst string) time.Duration

// Options configures a new Engine.
type Options struct {
	// Seed initialises the engine RNG. Runs with equal seeds and equal
	// workloads produce identical schedules.
	Seed int64
	// MaxEvents bounds the cumulative number of processed events over the
	// engine's lifetime as a defence against livelock. The bound is
	// cumulative rather than per Run call so that a run executed in
	// segments -- or forked mid-way from a checkpoint -- exhausts the
	// budget at exactly the same event as a single straight Run. Zero
	// means the default (4 million).
	MaxEvents int
	// Latency overrides the default message latency model. When nil, a
	// fixed DefaultLatency plus uniform Jitter is used.
	Latency LatencyFunc
	// DefaultLatency is the base one-way message latency (default 1ms).
	DefaultLatency time.Duration
	// Jitter is the maximum uniform extra latency per message (default
	// 200us). Jitter is what makes different seeds explore different
	// interleavings. A negative value disables jitter entirely: messages
	// take exactly DefaultLatency and the default latency model never
	// touches the RNG, which keeps the RNG stream free for workload use.
	Jitter time.Duration
	// Checkpointing enables Engine.Checkpoint by keeping a registry of
	// every mailbox created on the engine. The registry pins reply
	// mailboxes from completed Calls for the engine's lifetime, so the
	// flag is off by default and the harness enables it only for profile
	// runs whose prefixes are worth capturing. Tracking has no observable
	// effect on a run's schedule, RNG stream, or ids.
	Checkpointing bool
}

type eventKind uint8

const (
	evWake    eventKind = iota // resume a parked or not-yet-started process
	evApply                    // run a closure in engine context
	evDeliver                  // deliver a message body to a mailbox
)

// event is scheduled work. Events are stored by value in the queue: no
// per-event heap allocation and no interface boxing on push or pop. The
// evDeliver fields are inlined (rather than closed over by an evApply
// closure) so plain message sends -- the dominant event type in RPC-heavy
// workloads -- allocate nothing.
type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	proc *Proc
	gen  uint64 // wake generation; stale wakes are ignored
	fn   func()
	// evDeliver payload.
	mb   *Mailbox
	body interface{}
	src  string
}

// eventQueue is an inlined 4-ary min-heap of event values ordered by
// (at, seq). Because seq is unique per event the ordering key is a strict
// total order, so the pop sequence is exactly ascending (at, seq) --
// identical to the binary container/heap it replaces -- while the wider
// fan-out halves the sift depth and the value storage eliminates the
// pointer chase and interface conversions of heap.Push/heap.Pop. The
// backing array is reused across pushes (its own free list): after warm-up
// a schedule/pop cycle performs zero allocations.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	// Sift up.
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&q.ev[i], &q.ev[p]) {
			break
		}
		q.ev[i], q.ev[p] = q.ev[p], q.ev[i]
		i = p
	}
}

// peek returns a pointer to the minimum event; the queue must be non-empty.
// The pointer is invalidated by the next push or pop.
func (q *eventQueue) peek() *event { return &q.ev[0] }

// pop removes and returns the minimum event; the queue must be non-empty.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // release proc/fn/body references
	q.ev = q.ev[:n]
	// Sift down.
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Pick the smallest of up to four children.
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if eventLess(&q.ev[k], &q.ev[min]) {
				min = k
			}
		}
		if !eventLess(&q.ev[min], &q.ev[i]) {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}

// Engine is a deterministic discrete-event simulator instance. An Engine
// is not safe for concurrent use; all interaction happens either before
// Run, from within simulated processes, or from evApply closures.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventQueue
	src    *Source // two-word copyable RNG state behind rng
	rng    *rand.Rand

	procs    []*Proc
	nextPID  int
	parked   chan struct{} // signalled by a process when it yields or exits
	running  bool
	closed   bool
	executed int

	// Fault-surface state maps are lazily allocated: most runs never
	// partition, pause, or crash anything, and nil-map reads are free in
	// Go, so the common path pays neither the four make(map) calls per
	// engine nor any cleanup.
	latency    LatencyFunc
	partitions map[[2]string]bool
	paused     map[string]bool
	crashed    map[string]bool
	held       map[string][]heldDelivery // deliveries held while a node is paused

	// stacks interns the 2-frame occurrence stacks captured by the
	// injection hooks: one canonical slice per distinct (caller, callee,
	// depth) triple per engine, so repeated fault activations in the same
	// context return the same backing array instead of allocating.
	stacks map[stackKey][]string

	maxEvents int
	fail      *procPanic

	nextMailboxID int
	// mailboxes registers every mailbox created on this engine, in
	// creation order, so checkpoints can capture queue contents and remap
	// them by id on restore. Populated only under Options.Checkpointing,
	// since the registry pins reply mailboxes for the engine's lifetime.
	mailboxes     []*Mailbox
	checkpointing bool
}

// procPanic carries a user panic from a process goroutine back to the
// engine goroutine.
type procPanic struct {
	proc *Proc
	val  interface{}
}

type heldDelivery struct {
	mb   *Mailbox
	body interface{}
}

// NewEngine returns a fresh Engine configured by opts.
func NewEngine(opts Options) *Engine {
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 4_000_000
	}
	if opts.DefaultLatency == 0 {
		opts.DefaultLatency = time.Millisecond
	}
	if opts.Jitter == 0 {
		opts.Jitter = 200 * time.Microsecond
	}
	src := NewSource(opts.Seed)
	e := &Engine{
		src:           src,
		rng:           rand.New(src),
		parked:        make(chan struct{}),
		maxEvents:     opts.MaxEvents,
		checkpointing: opts.Checkpointing,
	}
	if opts.Latency != nil {
		e.latency = opts.Latency
	} else {
		base, jit := opts.DefaultLatency, opts.Jitter
		if jit < 0 {
			jit = 0
		}
		e.latency = func(rng *rand.Rand, src, dst string) time.Duration {
			if src == dst {
				// Local fast path: fixed loopback latency, no RNG draw.
				return 10 * time.Microsecond
			}
			if jit == 0 {
				// Jitter disabled: skip the RNG draw entirely.
				return base
			}
			return base + time.Duration(rng.Int63n(int64(jit)+1))
		}
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine RNG. It must only be used from the single-runner
// context (process bodies, After closures, or before Run).
func (e *Engine) Rand() *rand.Rand { return e.rng }

func (e *Engine) schedule(at time.Duration, kind eventKind, p *Proc, gen uint64, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, kind: kind, proc: p, gen: gen, fn: fn})
}

// scheduleDeliver enqueues a message delivery without allocating a closure.
func (e *Engine) scheduleDeliver(at time.Duration, mb *Mailbox, body interface{}, src string) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, kind: evDeliver, mb: mb, body: body, src: src})
}

// After runs fn in engine context at virtual time Now()+d. fn must not
// block; use Spawn for blocking work.
func (e *Engine) After(d time.Duration, fn func()) {
	e.schedule(e.now+d, evApply, nil, 0, fn)
}

// Spawn creates a new simulated process on the given node and schedules it
// to start immediately. The name is used in diagnostics and call stacks.
func (e *Engine) Spawn(node, name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		eng:    e,
		pid:    e.nextPID,
		node:   node,
		name:   name,
		fn:     fn,
		resume: make(chan wakeSignal),
	}
	e.procs = append(e.procs, p)
	e.schedule(e.now, evWake, p, 0, nil)
	return p
}

// deliver completes an evDeliver event: the message vanishes when the link
// is partitioned or the destination crashed, is held while the destination
// is paused, and is enqueued otherwise.
func (e *Engine) deliver(ev *event) {
	dst := ev.mb.node
	if e.crashed[dst] || e.partitions[partKey(ev.src, dst)] {
		return
	}
	if e.paused[dst] {
		if e.held == nil {
			e.held = make(map[string][]heldDelivery)
		}
		e.held[dst] = append(e.held[dst], heldDelivery{mb: ev.mb, body: ev.body})
		return
	}
	ev.mb.deliver(ev.body)
}

// Run processes events until the virtual clock passes the horizon, the
// event queue drains, or the event budget is exhausted.
func (e *Engine) Run(horizon time.Duration) RunResult {
	if e.closed {
		panic("sim: Run after Close")
	}
	e.running = true
	defer func() { e.running = false }()
	processed := 0
	for e.events.len() > 0 {
		// The event budget is cumulative across Run calls: a run executed
		// in segments (checkpoint probing) or resumed from a checkpoint
		// (executed is restored) hits the budget at exactly the same event
		// as the same run executed in one Run call.
		if e.executed+processed >= e.maxEvents {
			e.executed += processed
			return RunResult{Reason: StopEventBudget, Now: e.now, Events: processed}
		}
		if e.events.peek().at > horizon {
			// Leave it queued for a potential later Run with a larger
			// horizon (peek-first replaces the old pop-then-push-back).
			e.now = horizon
			e.executed += processed
			return RunResult{Reason: StopHorizon, Now: e.now, Events: processed}
		}
		ev := e.events.pop()
		e.now = ev.at
		processed++
		switch ev.kind {
		case evApply:
			ev.fn()
		case evDeliver:
			e.deliver(&ev)
		case evWake:
			p := ev.proc
			if p.done || p.killed || e.crashed[p.node] {
				continue
			}
			if ev.gen != p.wakeGen {
				continue // stale wake (e.g. timeout racing a delivery)
			}
			e.step(p, wakeSignal{})
		}
	}
	e.executed += processed
	return RunResult{Reason: StopQuiesced, Now: e.now, Events: processed}
}

// step hands the runner token to p and waits for it to park again.
func (e *Engine) step(p *Proc, sig wakeSignal) {
	if !p.started {
		p.started = true
		go p.run()
	}
	p.resume <- sig
	<-e.parked
	if e.fail != nil {
		f := e.fail
		e.fail = nil
		panic(fmt.Sprintf("sim: process %q on node %q panicked: %v", f.proc.name, f.proc.node, f.val))
	}
}

// Close terminates all live processes and releases their goroutines. It
// must be called exactly once after the final Run.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if p.started && !p.done {
			p.killed = true
			e.step(p, wakeSignal{kill: true})
		}
	}
}

// Events returns the total number of events processed across all Run calls.
func (e *Engine) Events() int { return e.executed }

// stackKey identifies an interned (up to) 2-frame stack; the depth
// disambiguates a 1-frame stack from a 2-frame stack with an empty name.
type stackKey struct {
	a, b string
	n    uint8
}

// internStack returns the canonical interned slice for a (up to) 2-frame
// stack. Callers must not mutate the result.
func (e *Engine) internStack(a, b string, n int) []string {
	key := stackKey{a: a, b: b, n: uint8(n)}
	if s, ok := e.stacks[key]; ok {
		return s
	}
	if e.stacks == nil {
		e.stacks = make(map[stackKey][]string)
	}
	var s []string
	switch n {
	case 0:
		s = []string{}
	case 1:
		s = []string{a}
	default:
		s = []string{a, b}
	}
	e.stacks[key] = s
	return s
}

// --- network fault surface (used by the blackbox fuzzing baseline and by
// workloads that model coarse external faults) ---

func partKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetPartition blocks (or unblocks) message delivery between two nodes.
func (e *Engine) SetPartition(a, b string, blocked bool) {
	if blocked {
		if e.partitions == nil {
			e.partitions = make(map[[2]string]bool)
		}
		e.partitions[partKey(a, b)] = true
	} else {
		delete(e.partitions, partKey(a, b))
	}
}

// Partitioned reports whether messages between a and b are being dropped.
func (e *Engine) Partitioned(a, b string) bool { return e.partitions[partKey(a, b)] }

// PauseNode holds all message deliveries to the node until ResumeNode.
// Paused nodes keep their local timers; only the network is frozen, which
// mirrors a GC pause or an overloaded NIC.
func (e *Engine) PauseNode(node string) {
	if e.paused == nil {
		e.paused = make(map[string]bool)
	}
	e.paused[node] = true
}

// ResumeNode releases a paused node and flushes held deliveries.
func (e *Engine) ResumeNode(node string) {
	if !e.paused[node] {
		return
	}
	delete(e.paused, node)
	held := e.held[node]
	delete(e.held, node)
	for _, h := range held {
		h.mb.deliver(h.body)
	}
}

// CrashNode permanently removes a node: its processes stop being scheduled
// and messages to it vanish. Any paused state is cleared too, so a stray
// ResumeNode on a crashed node is a clean no-op (previously the paused
// entry leaked and accumulated across long campaigns).
func (e *Engine) CrashNode(node string) {
	if e.crashed == nil {
		e.crashed = make(map[string]bool)
	}
	e.crashed[node] = true
	delete(e.paused, node)
	delete(e.held, node)
	for _, p := range e.procs {
		if p.node == node && p.started && !p.done {
			p.wakeGen++ // invalidate pending wakes
		}
	}
}

// Crashed reports whether the node has been crashed.
func (e *Engine) Crashed(node string) bool { return e.crashed[node] }
