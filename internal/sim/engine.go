// Package sim implements a deterministic discrete-event simulator for
// distributed systems. It is the execution substrate on which the target
// systems in internal/systems run: every node, worker, queue, timer, RPC,
// and network fault is simulated against a virtual clock, so fault
// injection experiments are fast, reproducible, and seed-controlled.
//
// The engine uses a cooperative single-runner discipline: at any instant
// exactly one simulated process executes; all others are parked. Processes
// advance the virtual clock only through blocking operations (Sleep, Work,
// Recv, Call), which makes runs with equal seeds bit-for-bit identical.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// StopReason reports why Engine.Run returned.
type StopReason int

const (
	// StopQuiesced means the event queue drained: no process has pending
	// work or timers. This is the normal end of a workload.
	StopQuiesced StopReason = iota
	// StopHorizon means the virtual-time horizon passed before the system
	// quiesced. Long-running services (heartbeat loops) always end here.
	StopHorizon
	// StopEventBudget means the event-count safety valve fired, which
	// usually indicates a runaway retry storm -- exactly the behaviour
	// cascading-failure experiments try to provoke.
	StopEventBudget
)

func (r StopReason) String() string {
	switch r {
	case StopQuiesced:
		return "quiesced"
	case StopHorizon:
		return "horizon"
	case StopEventBudget:
		return "event-budget"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// RunResult summarises a completed Engine.Run call.
type RunResult struct {
	Reason StopReason
	Now    time.Duration
	Events int
}

// LatencyFunc computes the one-way network latency for a message between
// two nodes. Implementations may draw jitter from rng; the engine calls it
// only from the single-runner context, so no locking is needed.
type LatencyFunc func(rng *rand.Rand, src, dst string) time.Duration

// Options configures a new Engine.
type Options struct {
	// Seed initialises the engine RNG. Runs with equal seeds and equal
	// workloads produce identical schedules.
	Seed int64
	// MaxEvents bounds the number of processed events per Run call as a
	// defence against livelock. Zero means the default (4 million).
	MaxEvents int
	// Latency overrides the default message latency model. When nil, a
	// fixed DefaultLatency plus uniform Jitter is used.
	Latency LatencyFunc
	// DefaultLatency is the base one-way message latency (default 1ms).
	DefaultLatency time.Duration
	// Jitter is the maximum uniform extra latency per message (default
	// 200us). Jitter is what makes different seeds explore different
	// interleavings.
	Jitter time.Duration
}

type eventKind int

const (
	evWake  eventKind = iota // resume a parked or not-yet-started process
	evApply                  // run a closure in engine context
)

type event struct {
	at   time.Duration
	seq  uint64
	kind eventKind
	proc *Proc
	gen  uint64 // wake generation; stale wakes are ignored
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator instance. An Engine
// is not safe for concurrent use; all interaction happens either before
// Run, from within simulated processes, or from evApply closures.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	procs    []*Proc
	nextPID  int
	parked   chan struct{} // signalled by a process when it yields or exits
	running  bool
	closed   bool
	executed int

	latency    LatencyFunc
	partitions map[[2]string]bool
	paused     map[string]bool
	crashed    map[string]bool
	held       map[string][]heldDelivery // deliveries held while a node is paused

	maxEvents int
	fail      *procPanic

	nextMailboxID int
}

// procPanic carries a user panic from a process goroutine back to the
// engine goroutine.
type procPanic struct {
	proc *Proc
	val  interface{}
}

type heldDelivery struct {
	mb   *Mailbox
	body interface{}
}

// NewEngine returns a fresh Engine configured by opts.
func NewEngine(opts Options) *Engine {
	if opts.MaxEvents == 0 {
		opts.MaxEvents = 4_000_000
	}
	if opts.DefaultLatency == 0 {
		opts.DefaultLatency = time.Millisecond
	}
	if opts.Jitter == 0 {
		opts.Jitter = 200 * time.Microsecond
	}
	e := &Engine{
		rng:        rand.New(rand.NewSource(opts.Seed)),
		parked:     make(chan struct{}),
		partitions: make(map[[2]string]bool),
		paused:     make(map[string]bool),
		crashed:    make(map[string]bool),
		held:       make(map[string][]heldDelivery),
		maxEvents:  opts.MaxEvents,
	}
	if opts.Latency != nil {
		e.latency = opts.Latency
	} else {
		base, jit := opts.DefaultLatency, opts.Jitter
		e.latency = func(rng *rand.Rand, src, dst string) time.Duration {
			if src == dst {
				return 10 * time.Microsecond
			}
			return base + time.Duration(rng.Int63n(int64(jit)+1))
		}
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine RNG. It must only be used from the single-runner
// context (process bodies, After closures, or before Run).
func (e *Engine) Rand() *rand.Rand { return e.rng }

func (e *Engine) schedule(at time.Duration, kind eventKind, p *Proc, gen uint64, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, kind: kind, proc: p, gen: gen, fn: fn})
}

// After runs fn in engine context at virtual time Now()+d. fn must not
// block; use Spawn for blocking work.
func (e *Engine) After(d time.Duration, fn func()) {
	e.schedule(e.now+d, evApply, nil, 0, fn)
}

// Spawn creates a new simulated process on the given node and schedules it
// to start immediately. The name is used in diagnostics and call stacks.
func (e *Engine) Spawn(node, name string, fn func(p *Proc)) *Proc {
	e.nextPID++
	p := &Proc{
		eng:    e,
		pid:    e.nextPID,
		node:   node,
		name:   name,
		fn:     fn,
		resume: make(chan wakeSignal),
	}
	e.procs = append(e.procs, p)
	e.schedule(e.now, evWake, p, 0, nil)
	return p
}

// Run processes events until the virtual clock passes the horizon, the
// event queue drains, or the event budget is exhausted.
func (e *Engine) Run(horizon time.Duration) RunResult {
	if e.closed {
		panic("sim: Run after Close")
	}
	e.running = true
	defer func() { e.running = false }()
	processed := 0
	for e.events.Len() > 0 {
		if processed >= e.maxEvents {
			e.executed += processed
			return RunResult{Reason: StopEventBudget, Now: e.now, Events: processed}
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at > horizon {
			// Put it back for a potential later Run with a larger horizon.
			heap.Push(&e.events, ev)
			e.now = horizon
			e.executed += processed
			return RunResult{Reason: StopHorizon, Now: e.now, Events: processed}
		}
		e.now = ev.at
		processed++
		switch ev.kind {
		case evApply:
			ev.fn()
		case evWake:
			p := ev.proc
			if p.done || p.killed || e.crashed[p.node] {
				continue
			}
			if ev.gen != p.wakeGen {
				continue // stale wake (e.g. timeout racing a delivery)
			}
			e.step(p, wakeSignal{})
		}
	}
	e.executed += processed
	return RunResult{Reason: StopQuiesced, Now: e.now, Events: processed}
}

// step hands the runner token to p and waits for it to park again.
func (e *Engine) step(p *Proc, sig wakeSignal) {
	if !p.started {
		p.started = true
		go p.run()
	}
	p.resume <- sig
	<-e.parked
	if e.fail != nil {
		f := e.fail
		e.fail = nil
		panic(fmt.Sprintf("sim: process %q on node %q panicked: %v", f.proc.name, f.proc.node, f.val))
	}
}

// Close terminates all live processes and releases their goroutines. It
// must be called exactly once after the final Run.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, p := range e.procs {
		if p.started && !p.done {
			p.killed = true
			e.step(p, wakeSignal{kill: true})
		}
	}
}

// Events returns the total number of events processed across all Run calls.
func (e *Engine) Events() int { return e.executed }

// --- network fault surface (used by the blackbox fuzzing baseline and by
// workloads that model coarse external faults) ---

func partKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetPartition blocks (or unblocks) message delivery between two nodes.
func (e *Engine) SetPartition(a, b string, blocked bool) {
	if blocked {
		e.partitions[partKey(a, b)] = true
	} else {
		delete(e.partitions, partKey(a, b))
	}
}

// Partitioned reports whether messages between a and b are being dropped.
func (e *Engine) Partitioned(a, b string) bool { return e.partitions[partKey(a, b)] }

// PauseNode holds all message deliveries to the node until ResumeNode.
// Paused nodes keep their local timers; only the network is frozen, which
// mirrors a GC pause or an overloaded NIC.
func (e *Engine) PauseNode(node string) { e.paused[node] = true }

// ResumeNode releases a paused node and flushes held deliveries.
func (e *Engine) ResumeNode(node string) {
	if !e.paused[node] {
		return
	}
	delete(e.paused, node)
	held := e.held[node]
	delete(e.held, node)
	for _, h := range held {
		h.mb.deliver(h.body)
	}
}

// CrashNode permanently removes a node: its processes stop being scheduled
// and messages to it vanish.
func (e *Engine) CrashNode(node string) {
	e.crashed[node] = true
	delete(e.held, node)
	for _, p := range e.procs {
		if p.node == node && p.started && !p.done {
			p.wakeGen++ // invalidate pending wakes
		}
	}
}

// Crashed reports whether the node has been crashed.
func (e *Engine) Crashed(node string) bool { return e.crashed[node] }
