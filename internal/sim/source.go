// The engine RNG source. math/rand's default source hides 607 words of
// state behind an interface, which makes engine state impossible to
// capture for checkpointing. Source is a splitmix-style generator whose
// entire state is two uint64 words, so a checkpoint copies it by value
// and a restored engine continues the exact stream the original would
// have produced.

package sim

// Source is a copyable pseudo-random source implementing
// math/rand.Source64. It is splitmix-style: a Weyl sequence (state +=
// gamma) finalised by a 64-bit avalanche mix. The whole generator state
// is the two words {state, gamma}, so a plain struct copy yields an
// independent generator that continues the identical stream.
//
// The gamma increment is derived from the seed (forced odd so the Weyl
// sequence has full period 2^64), which decorrelates nearby seeds: the
// harness allocates seeds densely (base+rep) and must not get
// correlated schedules out of them.
type Source struct {
	state uint64
	gamma uint64
}

// golden is the 64-bit golden-ratio constant used to derive per-seed
// gamma increments.
const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finaliser: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source to the canonical state for seed, satisfying
// math/rand.Source.
func (s *Source) Seed(seed int64) {
	s.state = mix64(uint64(seed))
	s.gamma = mix64(uint64(seed)^golden) | 1
}

// Uint64 returns the next value in the stream, satisfying
// math/rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += s.gamma
	return mix64(s.state)
}

// Int63 returns a non-negative 63-bit value, satisfying math/rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// SourceState is the complete captured state of a Source.
type SourceState struct {
	State uint64
	Gamma uint64
}

// Snapshot returns the current two-word state.
func (s *Source) Snapshot() SourceState { return SourceState{State: s.state, Gamma: s.gamma} }

// Restore overwrites the source state with a previously captured
// snapshot; the source then continues the stream from that point.
func (s *Source) Restore(st SourceState) { s.state, s.gamma = st.State, st.Gamma }

// Clone returns an independent copy that will produce the identical
// remaining stream.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}
