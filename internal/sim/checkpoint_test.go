package sim_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// toy is a small three-node system written to the Checkpointable
// contract: every park is a tagged SleepQ/RecvQ, every loop is
// work-first (park last), message bodies are plain ints, and all mutable
// state lives in the struct so a snapshot plus rebuilt bodies fully
// reconstructs it.
type toy struct {
	in1, in2, in3 *sim.Mailbox

	i, j    int
	trail   []string
	ticker  *sim.Proc
	pulse   *sim.Proc
	lost    *sim.Proc
	servers [2]*sim.Proc
}

type toyState struct {
	i, j       int
	trail      []string
	tickerPID  int
	pulsePID   int
	lostPID    int
	serverPIDs [2]int
}

func newToy(e *sim.Engine) *toy {
	t := &toy{}
	t.makeBoxes(e)
	t.ticker = e.Spawn("n1", "ticker", t.tickerBody)
	t.servers[0] = e.Spawn("n2", "server0", t.serverBody)
	t.servers[1] = e.Spawn("n2", "server1", t.serverBody)
	t.pulse = e.Spawn("n1", "pulse", t.pulseBody)
	t.lost = e.Spawn("n3", "lost", t.lostBody)
	return t
}

func (t *toy) lostBody(p *sim.Proc) {
	for {
		t.log(p, "lost tick")
		p.SleepQ(3*time.Millisecond, "lost.tick")
	}
}

// makeBoxes creates the mailboxes in a fixed order so a restore assigns
// them the same ids the capture recorded.
func (t *toy) makeBoxes(e *sim.Engine) {
	t.in1 = e.NewMailbox("n1", "inbox")
	t.in2 = e.NewMailbox("n2", "inbox")
	t.in3 = e.NewMailbox("n3", "inbox")
}

func (t *toy) log(p *sim.Proc, msg string) {
	t.trail = append(t.trail, fmt.Sprintf("%s %s/%s %s", p.Now(), p.Node(), p.Name(), msg))
}

func (t *toy) tickerBody(p *sim.Proc) {
	for {
		t.i++
		v := p.Rand().Intn(1000)
		t.log(p, fmt.Sprintf("tick %d v=%d", t.i, v))
		p.Send(t.in2, t.i*1000+v)
		if t.i%3 == 0 {
			p.Send(t.in3, t.i)
		}
		p.SleepQ(time.Duration(500+p.Rand().Intn(500))*time.Microsecond, "tick")
	}
}

func (t *toy) serverBody(p *sim.Proc) {
	for {
		m := p.RecvQ(t.in2, "serve")
		t.log(p, fmt.Sprintf("serve %v", m))
		p.SleepQ(time.Duration(300+p.Rand().Intn(400))*time.Microsecond, "work")
	}
}

// pulse alternates two phases with two distinct park sites, so adoption
// must dispatch on the captured park tag.
func (t *toy) pulseBody(p *sim.Proc) {
	for {
		t.phaseA(p)
		p.SleepQ(700*time.Microsecond, "pulse.a")
		t.phaseB(p)
		p.SleepQ(900*time.Microsecond, "pulse.b")
	}
}

// pulseResumeA is pulseBody rotated to resume after the "pulse.a" park.
func (t *toy) pulseResumeA(p *sim.Proc) {
	t.phaseB(p)
	p.SleepQ(900*time.Microsecond, "pulse.b")
	t.pulseBody(p)
}

func (t *toy) phaseA(p *sim.Proc) {
	t.j++
	t.log(p, fmt.Sprintf("A %d", t.j))
}

func (t *toy) phaseB(p *sim.Proc) {
	t.log(p, fmt.Sprintf("B %d", t.j))
	p.Send(t.in2, 9000+t.j)
}

func (t *toy) snapshot() toyState {
	return toyState{
		i:          t.i,
		j:          t.j,
		trail:      append([]string(nil), t.trail...),
		tickerPID:  t.ticker.PID(),
		pulsePID:   t.pulse.PID(),
		lostPID:    t.lost.PID(),
		serverPIDs: [2]int{t.servers[0].PID(), t.servers[1].PID()},
	}
}

func restoreToy(e *sim.Engine, s *sim.RestoreSession, st toyState) (*toy, error) {
	t := &toy{i: st.i, j: st.j, trail: append([]string(nil), st.trail...)}
	t.makeBoxes(e)
	var err error
	if t.ticker, err = s.Adopt(st.tickerPID, t.tickerBody); err != nil {
		return nil, err
	}
	for k, pid := range st.serverPIDs {
		// Both server park sites resume at the loop top, so one body
		// serves both tags.
		if t.servers[k], err = s.Adopt(pid, t.serverBody); err != nil {
			return nil, err
		}
	}
	body := t.pulseBody
	if tag, ok := s.ParkTag(st.pulsePID); ok && tag == "pulse.a" {
		body = t.pulseResumeA
	}
	if t.pulse, err = s.Adopt(st.pulsePID, body); err != nil {
		return nil, err
	}
	// The n3 "lost" process is only adoptable while n3 is alive; after a
	// crash its capture record is a tombstone and ParkTag reports !ok.
	if _, alive := s.ParkTag(st.lostPID); alive {
		if t.lost, err = s.Adopt(st.lostPID, t.lostBody); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func ckOpts(seed int64) sim.Options {
	return sim.Options{Seed: seed, Checkpointing: true}
}

// forkAt runs the toy to capture time tc (crashing n3 at crashAt if
// non-zero), checkpoints, and returns the original engine+toy (run on to
// horizon) plus a forked engine+toy restored from the checkpoint and run
// to the same horizon.
func forkAt(t *testing.T, seed int64, crashAt, tc, horizon time.Duration) (orig, fork *toy, oe, fe *sim.Engine) {
	t.Helper()
	oe = sim.NewEngine(ckOpts(seed))
	orig = newToy(oe)
	if crashAt > 0 {
		oe.Run(crashAt)
		oe.CrashNode("n3")
	}
	oe.Run(tc)
	ck, err := oe.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint at %s: %v", tc, err)
	}
	st := orig.snapshot()
	oe.Run(horizon)

	fe = sim.NewEngine(ckOpts(seed))
	sess, err := ck.RestoreInto(fe)
	if err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	if fork, err = restoreToy(fe, sess, st); err != nil {
		t.Fatalf("restoreToy: %v", err)
	}
	if err := sess.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	fe.Run(horizon)
	return orig, fork, oe, fe
}

func TestCheckpointForkMatchesOriginal(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		for _, tc := range []time.Duration{3 * time.Millisecond, 5 * time.Millisecond, 8 * time.Millisecond} {
			orig, fork, oe, fe := forkAt(t, seed, 2*time.Millisecond, tc, 12*time.Millisecond)
			if !reflect.DeepEqual(orig.trail, fork.trail) {
				t.Fatalf("seed %d fork at %s: trails diverge\norig %d entries, fork %d entries\nfirst diff: %s",
					seed, tc, len(orig.trail), len(fork.trail), firstDiff(orig.trail, fork.trail))
			}
			if oe.Events() != fe.Events() {
				t.Fatalf("seed %d fork at %s: events %d != %d", seed, tc, oe.Events(), fe.Events())
			}
			if oe.Now() != fe.Now() {
				t.Fatalf("seed %d fork at %s: now %s != %s", seed, tc, oe.Now(), fe.Now())
			}
			// The RNG stream must be position-identical after the run.
			for k := 0; k < 3; k++ {
				if a, b := oe.Rand().Int63(), fe.Rand().Int63(); a != b {
					t.Fatalf("seed %d fork at %s: rng diverged at post-draw %d: %d != %d", seed, tc, k, a, b)
				}
			}
			oe.Close()
			fe.Close()
		}
	}
}

func TestCheckpointTwoForksIdentical(t *testing.T) {
	oe := sim.NewEngine(ckOpts(5))
	orig := newToy(oe)
	oe.Run(4 * time.Millisecond)
	ck, err := oe.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	st := orig.snapshot()
	defer oe.Close()

	run := func() *toy {
		fe := sim.NewEngine(ckOpts(5))
		defer fe.Close()
		sess, err := ck.RestoreInto(fe)
		if err != nil {
			t.Fatalf("RestoreInto: %v", err)
		}
		fk, err := restoreToy(fe, sess, st)
		if err != nil {
			t.Fatalf("restoreToy: %v", err)
		}
		if err := sess.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		fe.Run(10 * time.Millisecond)
		return fk
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.trail, b.trail) {
		t.Fatalf("two forks from one checkpoint diverge: %s", firstDiff(a.trail, b.trail))
	}
}

func TestCheckpointHeldDeliveries(t *testing.T) {
	oe := sim.NewEngine(ckOpts(11))
	orig := newToy(oe)
	oe.PauseNode("n2")
	oe.Run(3 * time.Millisecond)
	ck, err := oe.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint with held deliveries: %v", err)
	}
	st := orig.snapshot()
	oe.ResumeNode("n2")
	oe.Run(8 * time.Millisecond)
	defer oe.Close()

	fe := sim.NewEngine(ckOpts(11))
	defer fe.Close()
	sess, err := ck.RestoreInto(fe)
	if err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	fork, err := restoreToy(fe, sess, st)
	if err != nil {
		t.Fatalf("restoreToy: %v", err)
	}
	if err := sess.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	fe.ResumeNode("n2")
	fe.Run(8 * time.Millisecond)

	if !reflect.DeepEqual(orig.trail, fork.trail) {
		t.Fatalf("held-delivery fork diverges: %s", firstDiff(orig.trail, fork.trail))
	}
}

func TestCheckpointNotQuiescent(t *testing.T) {
	t.Run("pending_after", func(t *testing.T) {
		e := sim.NewEngine(ckOpts(1))
		defer e.Close()
		newToy(e)
		e.Run(time.Millisecond)
		e.After(time.Millisecond, func() {})
		if _, err := e.Checkpoint(); !errors.Is(err, sim.ErrNotQuiescent) {
			t.Fatalf("err = %v, want ErrNotQuiescent", err)
		}
	})
	t.Run("untagged_park", func(t *testing.T) {
		e := sim.NewEngine(ckOpts(1))
		defer e.Close()
		e.Spawn("n1", "plain", func(p *sim.Proc) {
			for {
				p.Sleep(time.Millisecond)
			}
		})
		e.Run(500 * time.Microsecond)
		if _, err := e.Checkpoint(); !errors.Is(err, sim.ErrNotQuiescent) {
			t.Fatalf("err = %v, want ErrNotQuiescent", err)
		}
	})
	t.Run("queued_rpc_envelope", func(t *testing.T) {
		e := sim.NewEngine(ckOpts(1))
		defer e.Close()
		box := e.NewMailbox("n2", "srv")
		e.Spawn("n1", "caller", func(p *sim.Proc) {
			p.Send(box, sim.Req{Body: 1})
			for {
				p.SleepQ(time.Millisecond, "idle")
			}
		})
		e.Run(2 * time.Millisecond)
		if _, err := e.Checkpoint(); !errors.Is(err, sim.ErrNotQuiescent) {
			t.Fatalf("err = %v, want ErrNotQuiescent", err)
		}
	})
	t.Run("not_enabled", func(t *testing.T) {
		e := sim.NewEngine(sim.Options{Seed: 1})
		defer e.Close()
		_, err := e.Checkpoint()
		if err == nil || errors.Is(err, sim.ErrNotQuiescent) {
			t.Fatalf("err = %v, want hard error", err)
		}
	})
}

func TestRestoreFinishRequiresAdoption(t *testing.T) {
	oe := sim.NewEngine(ckOpts(3))
	orig := newToy(oe)
	oe.Run(2 * time.Millisecond)
	ck, err := oe.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	_ = orig
	defer oe.Close()

	fe := sim.NewEngine(ckOpts(3))
	defer fe.Close()
	sess, err := ck.RestoreInto(fe)
	if err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	if err := sess.Finish(); err == nil {
		t.Fatal("Finish with no adoptions succeeded")
	}
}

func TestRestoreTargetMustBeFresh(t *testing.T) {
	oe := sim.NewEngine(ckOpts(3))
	newToy(oe)
	oe.Run(2 * time.Millisecond)
	ck, err := oe.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	defer oe.Close()

	used := sim.NewEngine(ckOpts(3))
	defer used.Close()
	newToy(used)
	used.Run(time.Millisecond)
	if _, err := ck.RestoreInto(used); err == nil {
		t.Fatal("RestoreInto a used engine succeeded")
	}

	plain := sim.NewEngine(sim.Options{Seed: 3})
	defer plain.Close()
	if _, err := ck.RestoreInto(plain); err == nil {
		t.Fatal("RestoreInto a non-checkpointing engine succeeded")
	}
}

func TestCheckpointSizeBytes(t *testing.T) {
	e := sim.NewEngine(ckOpts(9))
	defer e.Close()
	newToy(e)
	e.Run(3 * time.Millisecond)
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ck.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d", ck.SizeBytes())
	}
	if ck.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %s", ck.Now())
	}
	if ck.Events() <= 0 {
		t.Fatalf("Events = %d", ck.Events())
	}
}

func firstDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: %q vs %q", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d (common prefix equal)", len(a), len(b))
}
