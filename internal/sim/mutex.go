package sim

// Mutex is a cooperative mutual-exclusion lock for simulated processes,
// built on a token mailbox. Target systems use it to model coarse-grained
// locks (e.g. a namesystem lock) whose holders transitively delay every
// other request -- a key contention-propagation mechanism in cascading
// failures.
type Mutex struct {
	token *Mailbox
}

// NewMutex creates an unlocked mutex hosted on the given node.
func NewMutex(e *Engine, node string) *Mutex {
	m := &Mutex{token: e.NewMailbox(node, "mutex")}
	m.token.deliver(struct{}{})
	return m
}

// Lock blocks until the mutex is acquired.
func (m *Mutex) Lock(p *Proc) {
	p.Recv(m.token, -1)
}

// Unlock releases the mutex, waking one waiter. The unlocking process
// must hold the lock.
func (m *Mutex) Unlock(p *Proc) {
	p.Send(m.token, struct{}{})
}
