package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func newTestEngine(seed int64) *Engine {
	return NewEngine(Options{Seed: seed})
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := newTestEngine(1)
	var at time.Duration
	e.Spawn("n1", "sleeper", func(p *Proc) {
		p.Sleep(250 * time.Millisecond)
		at = p.Now()
	})
	res := e.Run(time.Second)
	e.Close()
	if res.Reason != StopQuiesced {
		t.Fatalf("reason = %v, want quiesced", res.Reason)
	}
	if at != 250*time.Millisecond {
		t.Fatalf("woke at %v, want 250ms", at)
	}
}

func TestZeroAndNegativeSleepAreNoops(t *testing.T) {
	e := newTestEngine(1)
	var ran bool
	e.Spawn("n1", "p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-time.Second)
		ran = true
	})
	e.Run(time.Second)
	e.Close()
	if !ran {
		t.Fatal("process did not complete")
	}
}

func TestHorizonStopsLongRunners(t *testing.T) {
	e := newTestEngine(1)
	ticks := 0
	e.Spawn("n1", "ticker", func(p *Proc) {
		for {
			p.Sleep(100 * time.Millisecond)
			ticks++
		}
	})
	res := e.Run(time.Second)
	if res.Reason != StopHorizon {
		t.Fatalf("reason = %v, want horizon", res.Reason)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	e.Close()
}

func TestRunCanBeResumedWithLargerHorizon(t *testing.T) {
	e := newTestEngine(1)
	ticks := 0
	e.Spawn("n1", "ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	e.Run(2 * time.Second)
	if ticks != 2 {
		t.Fatalf("after first run ticks = %d, want 2", ticks)
	}
	e.Run(5 * time.Second)
	if ticks != 5 {
		t.Fatalf("after second run ticks = %d, want 5", ticks)
	}
	e.Close()
}

func TestSendRecv(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("n2", "inbox")
	var got interface{}
	e.Spawn("n2", "receiver", func(p *Proc) {
		got, _ = p.Recv(mb, -1)
	})
	e.Spawn("n1", "sender", func(p *Proc) {
		p.Send(mb, "hello")
	})
	e.Run(time.Second)
	e.Close()
	if got != "hello" {
		t.Fatalf("got %v, want hello", got)
	}
}

func TestRecvTimeout(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("n1", "inbox")
	var ok bool
	var at time.Duration
	e.Spawn("n1", "receiver", func(p *Proc) {
		_, ok = p.Recv(mb, 300*time.Millisecond)
		at = p.Now()
	})
	e.Run(time.Second)
	e.Close()
	if ok {
		t.Fatal("Recv returned ok on empty mailbox")
	}
	if at != 300*time.Millisecond {
		t.Fatalf("timed out at %v, want 300ms", at)
	}
}

func TestRecvFIFOOrder(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("n1", "inbox")
	var got []int
	e.Spawn("n1", "sender", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Send(mb, i)
			p.Sleep(10 * time.Millisecond) // keep deliveries ordered
		}
	})
	e.Spawn("n1", "receiver", func(p *Proc) {
		for i := 0; i < 5; i++ {
			m, ok := p.Recv(mb, -1)
			if !ok {
				t.Errorf("recv %d failed", i)
				return
			}
			got = append(got, m.(int))
		}
	})
	e.Run(time.Second)
	e.Close()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (fifo violated)", i, v, i)
		}
	}
}

func TestWorkerPoolSharedMailbox(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("srv", "pool")
	served := map[string]int{}
	for i := 0; i < 3; i++ {
		worker := fmt.Sprintf("w%d", i)
		e.Spawn("srv", worker, func(p *Proc) {
			for {
				m, ok := p.Recv(mb, -1)
				if !ok {
					return
				}
				_ = m
				p.Work(100 * time.Millisecond)
				served[p.Name()]++
			}
		})
	}
	e.Spawn("cli", "client", func(p *Proc) {
		for i := 0; i < 9; i++ {
			p.Send(mb, i)
		}
	})
	e.Run(10 * time.Second)
	e.Close()
	total := 0
	for _, n := range served {
		total += n
	}
	if total != 9 {
		t.Fatalf("served %d messages, want 9 (per-worker: %v)", total, served)
	}
	if len(served) < 2 {
		t.Fatalf("expected work spread over pool, got %v", served)
	}
}

func TestCallReplyRoundTrip(t *testing.T) {
	e := newTestEngine(1)
	srv := e.NewMailbox("srv", "rpc")
	e.Spawn("srv", "server", func(p *Proc) {
		for {
			m, ok := p.Recv(srv, -1)
			if !ok {
				return
			}
			req := m.(Req)
			p.Work(5 * time.Millisecond)
			p.Reply(req, req.Body.(int)*2, nil)
		}
	})
	var got interface{}
	var err error
	e.Spawn("cli", "client", func(p *Proc) {
		got, err = p.Call(srv, 21, time.Second)
	})
	e.Run(10 * time.Second)
	e.Close()
	if err != nil {
		t.Fatalf("call error: %v", err)
	}
	if got != 42 {
		t.Fatalf("got %v, want 42", got)
	}
}

func TestCallTimesOutWhenServerSlow(t *testing.T) {
	e := newTestEngine(1)
	srv := e.NewMailbox("srv", "rpc")
	e.Spawn("srv", "server", func(p *Proc) {
		m, _ := p.Recv(srv, -1)
		req := m.(Req)
		p.Work(5 * time.Second) // slower than the client's patience
		p.Reply(req, "late", nil)
	})
	var err error
	e.Spawn("cli", "client", func(p *Proc) {
		_, err = p.Call(srv, "q", 100*time.Millisecond)
	})
	e.Run(10 * time.Second)
	e.Close()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPartitionDropsMessages(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("b", "inbox")
	e.SetPartition("a", "b", true)
	var ok bool
	e.Spawn("b", "receiver", func(p *Proc) {
		_, ok = p.Recv(mb, 500*time.Millisecond)
	})
	e.Spawn("a", "sender", func(p *Proc) {
		p.Send(mb, "lost")
	})
	e.Run(time.Second)
	e.Close()
	if ok {
		t.Fatal("message crossed a partition")
	}
}

func TestPartitionHealRestoresDelivery(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("b", "inbox")
	e.SetPartition("a", "b", true)
	var got interface{}
	e.Spawn("b", "receiver", func(p *Proc) {
		got, _ = p.Recv(mb, 2*time.Second)
	})
	e.Spawn("a", "sender", func(p *Proc) {
		p.Send(mb, "lost")
		p.Sleep(100 * time.Millisecond)
		p.Engine().SetPartition("a", "b", false)
		p.Send(mb, "delivered")
	})
	e.Run(3 * time.Second)
	e.Close()
	if got != "delivered" {
		t.Fatalf("got %v, want delivered", got)
	}
}

func TestPauseHoldsAndResumeFlushes(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("b", "inbox")
	e.PauseNode("b")
	var got interface{}
	var at time.Duration
	e.Spawn("b", "receiver", func(p *Proc) {
		got, _ = p.Recv(mb, 5*time.Second)
		at = p.Now()
	})
	e.Spawn("a", "sender", func(p *Proc) {
		p.Send(mb, "held")
	})
	e.After(time.Second, func() { e.ResumeNode("b") })
	e.Run(10 * time.Second)
	e.Close()
	if got != "held" {
		t.Fatalf("got %v, want held", got)
	}
	if at < time.Second {
		t.Fatalf("delivered at %v, want >= 1s (while paused)", at)
	}
}

func TestCrashNodeStopsScheduling(t *testing.T) {
	e := newTestEngine(1)
	ticks := 0
	e.Spawn("b", "ticker", func(p *Proc) {
		for {
			p.Sleep(100 * time.Millisecond)
			ticks++
		}
	})
	e.After(450*time.Millisecond, func() { e.CrashNode("b") })
	e.Run(2 * time.Second)
	e.Close()
	if ticks != 4 {
		t.Fatalf("ticks = %d, want 4 (crashed after 450ms)", ticks)
	}
}

func TestCrashedNodeDropsInbound(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("b", "inbox")
	e.CrashNode("b")
	var err error
	e.Spawn("a", "client", func(p *Proc) {
		_, err = p.Call(mb, "ping", 200*time.Millisecond)
	})
	e.Run(time.Second)
	e.Close()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	runOnce := func(seed int64) []string {
		e := newTestEngine(seed)
		var log []string
		srv := e.NewMailbox("srv", "rpc")
		for i := 0; i < 2; i++ {
			e.Spawn("srv", fmt.Sprintf("w%d", i), func(p *Proc) {
				for {
					m, ok := p.Recv(srv, -1)
					if !ok {
						return
					}
					req := m.(Req)
					p.Work(time.Duration(p.Rand().Intn(10)+1) * time.Millisecond)
					log = append(log, fmt.Sprintf("%s@%v:%v", p.Name(), p.Now(), req.Body))
					p.Reply(req, nil, nil)
				}
			})
		}
		for c := 0; c < 3; c++ {
			cli := fmt.Sprintf("c%d", c)
			e.Spawn(cli, "client", func(p *Proc) {
				for i := 0; i < 5; i++ {
					p.Call(srv, fmt.Sprintf("%s-%d", p.Node(), i), time.Second)
					p.Sleep(time.Duration(p.Rand().Intn(20)) * time.Millisecond)
				}
			})
		}
		e.Run(30 * time.Second)
		e.Close()
		return log
	}
	a, b := runOnce(42), runOnce(42)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := runOnce(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules (suspicious)")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := newTestEngine(1)
	var childRan bool
	e.Spawn("n1", "parent", func(p *Proc) {
		p.Spawn("child", func(c *Proc) {
			c.Sleep(10 * time.Millisecond)
			childRan = true
		})
		p.Sleep(time.Millisecond)
	})
	e.Run(time.Second)
	e.Close()
	if !childRan {
		t.Fatal("spawned child never ran")
	}
}

func TestEnterStackTwoLevel(t *testing.T) {
	e := newTestEngine(1)
	var stack []string
	var full []string
	e.Spawn("n1", "p", func(p *Proc) {
		defer p.Enter("outer")()
		func() {
			defer p.Enter("middle")()
			func() {
				defer p.Enter("inner")()
				stack = p.Stack()
				full = p.FullStack()
			}()
		}()
	})
	e.Run(time.Second)
	e.Close()
	if len(stack) != 2 || stack[0] != "middle" || stack[1] != "inner" {
		t.Fatalf("stack = %v, want [middle inner]", stack)
	}
	if len(full) != 3 || full[0] != "outer" {
		t.Fatalf("full stack = %v", full)
	}
}

func TestBranchAccumulationAndReset(t *testing.T) {
	e := newTestEngine(1)
	var before, after []BranchEval
	e.Spawn("n1", "p", func(p *Proc) {
		defer p.Enter("f")()
		p.RecordBranch("b1", true)
		p.RecordBranch("b2", false)
		before = p.LocalBranches()
		p.ResetLocalBranches()
		p.RecordBranch("b3", true)
		after = p.LocalBranches()
	})
	e.Run(time.Second)
	e.Close()
	if len(before) != 2 || before[0].ID != "b1" || before[1].Taken {
		t.Fatalf("before = %v", before)
	}
	if len(after) != 1 || after[0].ID != "b3" {
		t.Fatalf("after = %v", after)
	}
}

func TestBranchesScopedPerFrame(t *testing.T) {
	e := newTestEngine(1)
	var innerTrace, outerTrace []BranchEval
	e.Spawn("n1", "p", func(p *Proc) {
		defer p.Enter("outer")()
		p.RecordBranch("o1", true)
		func() {
			defer p.Enter("inner")()
			p.RecordBranch("i1", false)
			innerTrace = p.LocalBranches()
		}()
		outerTrace = p.LocalBranches()
	})
	e.Run(time.Second)
	e.Close()
	if len(innerTrace) != 1 || innerTrace[0].ID != "i1" {
		t.Fatalf("inner trace = %v", innerTrace)
	}
	if len(outerTrace) != 1 || outerTrace[0].ID != "o1" {
		t.Fatalf("outer trace = %v (inner frame leaked)", outerTrace)
	}
}

func TestEventBudgetStopsRunawayLoop(t *testing.T) {
	e := NewEngine(Options{Seed: 1, MaxEvents: 1000})
	e.Spawn("n1", "spinner", func(p *Proc) {
		for {
			p.Sleep(time.Nanosecond)
		}
	})
	res := e.Run(time.Hour)
	e.Close()
	if res.Reason != StopEventBudget {
		t.Fatalf("reason = %v, want event-budget", res.Reason)
	}
}

func TestAfterRunsAtScheduledTime(t *testing.T) {
	e := newTestEngine(1)
	var at time.Duration
	e.After(700*time.Millisecond, func() { at = e.Now() })
	e.Run(time.Second)
	e.Close()
	if at != 700*time.Millisecond {
		t.Fatalf("After ran at %v, want 700ms", at)
	}
}

func TestEventHeapOrderingProperty(t *testing.T) {
	// Property: for any batch of scheduled times, Run processes them in
	// nondecreasing time order with FIFO tie-breaking by schedule order.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		e := newTestEngine(7)
		type obs struct {
			at  time.Duration
			seq int
		}
		var got []obs
		for i, r := range raw {
			d := time.Duration(r) * time.Microsecond
			i := i
			e.After(d, func() { got = append(got, obs{e.Now(), i}) })
		}
		e.Run(time.Hour)
		e.Close()
		if len(got) != len(raw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseReleasesBlockedProcesses(t *testing.T) {
	e := newTestEngine(1)
	mb := e.NewMailbox("n1", "never")
	cleaned := false
	e.Spawn("n1", "blocked", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Recv(mb, -1)
	})
	e.Run(time.Second)
	e.Close()
	if !cleaned {
		t.Fatal("blocked process not unwound by Close")
	}
}

func TestSameSeedEventCountsStable(t *testing.T) {
	count := func() int {
		e := newTestEngine(99)
		mb := e.NewMailbox("b", "in")
		e.Spawn("b", "rx", func(p *Proc) {
			for {
				if _, ok := p.Recv(mb, time.Second); !ok {
					return
				}
			}
		})
		e.Spawn("a", "tx", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Send(mb, i)
				p.Sleep(time.Duration(p.Rand().Intn(5)) * time.Millisecond)
			}
		})
		res := e.Run(time.Minute)
		e.Close()
		return res.Events
	}
	if a, b := count(), count(); a != b {
		t.Fatalf("event counts differ across identical runs: %d vs %d", a, b)
	}
}
