package analyzer

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/systems/dfs"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/metastore"
	"repro/internal/systems/objstore"
	"repro/internal/systems/stream"
	"repro/internal/systems/sysreg"
)

// repoRoot locates the module root from this test file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..")
}

func analyzeSys(t *testing.T, sys sysreg.System) *Inventory {
	t.Helper()
	inv, err := Analyze(repoRoot(t), sys.SourceDirs())
	if err != nil {
		t.Fatalf("Analyze(%s): %v", sys.Name(), err)
	}
	return inv
}

func TestCrossCheckAllSystems(t *testing.T) {
	// The declared point inventory of every target system must match the
	// hooks found in its source, point for point.
	systems := []sysreg.System{dfs.NewV3(), kvstore.New(), metastore.New(), stream.New(), objstore.New()}
	for _, sys := range systems {
		inv := analyzeSys(t, sys)
		if problems := inv.CrossCheck(sys.Points()); len(problems) != 0 {
			for _, p := range problems {
				t.Errorf("%s: %s", sys.Name(), p)
			}
		}
	}
}

func TestDFSInventoryCounts(t *testing.T) {
	inv := analyzeSys(t, dfs.NewV3())
	c := inv.Count()
	if c.Loops < 14 {
		t.Errorf("loops = %d, want >= 14", c.Loops)
	}
	if c.Exceptions < 12 {
		t.Errorf("exceptions = %d, want >= 12", c.Exceptions)
	}
	if c.Negations < 6 {
		t.Errorf("negations = %d, want >= 6", c.Negations)
	}
	if c.Hooks < c.Loops+c.Exceptions+c.Negations {
		t.Errorf("hooks = %d, implausibly low", c.Hooks)
	}
}

func TestLoopHooksSitInsideForStatements(t *testing.T) {
	systems := []sysreg.System{dfs.NewV3(), kvstore.New(), metastore.New(), stream.New(), objstore.New()}
	for _, sys := range systems {
		inv := analyzeSys(t, sys)
		for _, s := range inv.LoopHooksOutsideFor() {
			t.Errorf("%s: loop hook %s at %s is not inside a for statement", sys.Name(), s.ID, s.Pos)
		}
	}
}

func TestConstResolution(t *testing.T) {
	inv := analyzeSys(t, dfs.NewV2())
	if got := inv.Consts["PtDNIBRRPCIOE"]; got != "dfs.dn.ibr.rpc_ioe" {
		t.Errorf("const resolution = %q", got)
	}
	for _, s := range inv.Sites {
		if s.Kind != HookFn && s.ID == "" {
			t.Errorf("unresolved hook id at %s (%v in %s)", s.Pos, s.Kind, s.Func)
		}
	}
}

func TestAnalyzeMissingDir(t *testing.T) {
	if _, err := Analyze(repoRoot(t), []string{"internal/does/not/exist"}); err == nil {
		t.Fatal("want error for missing directory")
	}
}

// TestWalkVisitsForClauseSubtrees is the regression test for the walk
// fix: hook calls placed in a for statement's Init/Cond/Post clauses and
// in a range statement's ranged-over expression used to be skipped
// entirely (the walker returned false after visiting only the body).
// They must be discovered -- without the loop flag, which is reserved for
// hooks in the repeated body.
func TestWalkVisitsForClauseSubtrees(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

const (
	PtInit   = "fix.init"
	PtCond   = "fix.cond"
	PtPost   = "fix.post"
	PtRangeX = "fix.rangex"
	PtBody   = "fix.body"
)

func run(rt *RT) {
	for i := rt.Negate(nil, PtInit); rt.Negate(nil, PtCond); rt.Negate(nil, PtPost) {
		rt.Loop(nil, PtBody)
	}
	for range rt.Items(rt.Negate(nil, PtRangeX)) {
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	inv, err := Analyze(dir, []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	got := map[faults.ID]bool{}
	gotInFor := map[faults.ID]bool{}
	for _, s := range inv.Sites {
		got[s.ID] = true
		if s.InFor {
			gotInFor[s.ID] = true
		}
	}
	for _, id := range []faults.ID{"fix.init", "fix.cond", "fix.post", "fix.rangex"} {
		if !got[id] {
			t.Errorf("hook %s in a for/range clause was not discovered", id)
		}
	}
	// Init and the ranged-over expression evaluate once: no loop flag.
	for _, id := range []faults.ID{"fix.init", "fix.rangex"} {
		if gotInFor[id] {
			t.Errorf("once-evaluated clause hook %s must not carry the loop flag", id)
		}
	}
	// Cond and Post execute on every iteration: they repeat like the body.
	for _, id := range []faults.ID{"fix.cond", "fix.post", "fix.body"} {
		if !gotInFor[id] {
			t.Errorf("per-iteration hook %s must carry the loop flag", id)
		}
	}
}
