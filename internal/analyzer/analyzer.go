// Package analyzer is CSnake's static analyzer (§3 step 1), rebuilt for Go
// source instead of Java bytecode: it parses the instrumented target
// system packages with go/ast, finds every injection/monitor hook call
// (Guard, Err, Negate, Loop, Branch), resolves the point identifiers from
// the package's constant declarations, records the enclosing function and
// whether the hook sits inside a for-statement, and cross-checks the
// registered point inventory. Its output drives Table 2 and validates
// that the declared fault space matches the code.
package analyzer

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/faults"
)

// HookKind classifies a hook call site.
type HookKind int

const (
	HookGuard HookKind = iota // Guard or Err: exception injection points
	HookNegate
	HookLoop
	HookBranch
	HookFn
)

func (k HookKind) String() string {
	switch k {
	case HookGuard:
		return "guard"
	case HookNegate:
		return "negate"
	case HookLoop:
		return "loop"
	case HookBranch:
		return "branch"
	case HookFn:
		return "fn"
	default:
		return fmt.Sprintf("HookKind(%d)", int(k))
	}
}

// Site is one hook call discovered in the source.
type Site struct {
	Kind HookKind
	// ID is the resolved point identifier ("" when the argument is not a
	// resolvable constant).
	ID faults.ID
	// Func is the enclosing Go function or method name.
	Func string
	// InFor reports whether the call is lexically inside a for statement
	// (loop hooks outside any for statement are suspicious).
	InFor bool
	Pos   token.Position
}

// Inventory is the analysis result for one system.
type Inventory struct {
	Sites []Site
	// Consts maps constant names to their resolved point ids.
	Consts map[string]faults.ID
}

// Analyze parses the Go packages under the given directories (relative to
// root) and extracts the hook inventory.
func Analyze(root string, dirs []string) (*Inventory, error) {
	inv := &Inventory{Consts: make(map[string]faults.ID)}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, dir := range dirs {
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("analyzer: %w", err)
		}
		names := make([]string, 0, len(pkgs))
		for name := range pkgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fileNames := make([]string, 0, len(pkgs[name].Files))
			for fn := range pkgs[name].Files {
				fileNames = append(fileNames, fn)
			}
			sort.Strings(fileNames)
			for _, fn := range fileNames {
				if strings.HasSuffix(fn, "_test.go") {
					continue
				}
				files = append(files, pkgs[name].Files[fn])
			}
		}
	}
	for _, f := range files {
		inv.collectConsts(f)
	}
	for _, f := range files {
		inv.collectSites(fset, f)
	}
	return inv, nil
}

// collectConsts resolves `const Pt... faults.ID = "..."` declarations.
func (inv *Inventory) collectConsts(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					val := strings.Trim(lit.Value, `"`)
					inv.Consts[name.Name] = faults.ID(val)
				}
			}
		}
	}
}

// hookOf maps a selector method name to a hook kind; ok is false for
// non-hook calls.
func hookOf(name string) (HookKind, bool) {
	switch name {
	case "Guard", "Err":
		return HookGuard, true
	case "Negate":
		return HookNegate, true
	case "Loop":
		return HookLoop, true
	case "Branch":
		return HookBranch, true
	case "Fn":
		return HookFn, true
	}
	return 0, false
}

// collectSites walks function bodies recording hook calls.
func (inv *Inventory) collectSites(fset *token.FileSet, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		inv.walk(fset, fd.Name.Name, fd.Body, false)
	}
}

func (inv *Inventory) walk(fset *token.FileSet, fn string, node ast.Node, inFor bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			// Init evaluates once, before the loop: it inherits the
			// enclosing flag. Cond and Post execute on every iteration,
			// so hooks there repeat exactly like body hooks.
			if x.Init != nil {
				inv.walk(fset, fn, x.Init, inFor)
			}
			for _, clause := range []ast.Node{x.Cond, x.Post} {
				if clause != nil {
					inv.walk(fset, fn, clause, true)
				}
			}
			if x.Body != nil {
				inv.walk(fset, fn, x.Body, true)
			}
			return false
		case *ast.RangeStmt:
			// The ranged-over expression X evaluates once; Key/Value
			// index expressions are assigned on every iteration.
			if x.X != nil {
				inv.walk(fset, fn, x.X, inFor)
			}
			for _, clause := range []ast.Node{x.Key, x.Value} {
				if clause != nil {
					inv.walk(fset, fn, clause, true)
				}
			}
			if x.Body != nil {
				inv.walk(fset, fn, x.Body, true)
			}
			return false
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, isHook := hookOf(sel.Sel.Name)
			if !isHook {
				return true
			}
			site := Site{Kind: kind, Func: fn, InFor: inFor, Pos: fset.Position(x.Pos())}
			// Hook signatures put the point id as the second argument
			// (after the *sim.Proc); Fn takes a plain string.
			if kind != HookFn && len(x.Args) >= 2 {
				site.ID = inv.resolveID(x.Args[1])
			}
			inv.Sites = append(inv.Sites, site)
			return true
		}
		return true
	})
}

// resolveID maps an identifier or selector argument to a constant value.
func (inv *Inventory) resolveID(arg ast.Expr) faults.ID {
	switch a := arg.(type) {
	case *ast.Ident:
		return inv.Consts[a.Name]
	case *ast.SelectorExpr:
		return inv.Consts[a.Sel.Name]
	case *ast.BasicLit:
		if a.Kind == token.STRING {
			return faults.ID(strings.Trim(a.Value, `"`))
		}
	}
	return ""
}

// PointIDs returns the distinct resolved point ids per hook kind.
func (inv *Inventory) PointIDs(kind HookKind) []faults.ID {
	seen := make(map[faults.ID]bool)
	for _, s := range inv.Sites {
		if s.Kind == kind && s.ID != "" {
			seen[s.ID] = true
		}
	}
	out := make([]faults.ID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Counts summarises the inventory for Table 2.
type Counts struct {
	Loops      int
	Exceptions int
	Negations  int
	Branches   int
	Hooks      int
}

// Count computes Table 2-style totals from the distinct point ids.
func (inv *Inventory) Count() Counts {
	return Counts{
		Loops:      len(inv.PointIDs(HookLoop)),
		Exceptions: len(inv.PointIDs(HookGuard)),
		Negations:  len(inv.PointIDs(HookNegate)),
		Branches:   len(inv.PointIDs(HookBranch)),
		Hooks:      len(inv.Sites),
	}
}

// CrossCheck verifies the registered point inventory against the source:
// every registered point of an instrumentable kind must appear in exactly
// the matching hook calls, and vice versa. It returns human-readable
// discrepancies (empty means clean).
func (inv *Inventory) CrossCheck(points []faults.Point) []string {
	var problems []string
	fromSrc := map[faults.ID]HookKind{}
	for _, s := range inv.Sites {
		if s.ID != "" && s.Kind != HookBranch && s.Kind != HookFn {
			fromSrc[s.ID] = s.Kind
		}
	}
	for _, pt := range points {
		want := HookGuard
		switch pt.Kind {
		case faults.Negation:
			want = HookNegate
		case faults.Loop:
			want = HookLoop
		}
		got, ok := fromSrc[pt.ID]
		if !ok {
			problems = append(problems, fmt.Sprintf("registered point %s has no hook in source", pt.ID))
			continue
		}
		if got != want {
			problems = append(problems, fmt.Sprintf("point %s: registered as %v but hooked as %v", pt.ID, pt.Kind, got))
		}
		delete(fromSrc, pt.ID)
	}
	ids := make([]string, 0, len(fromSrc))
	for id := range fromSrc {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		problems = append(problems, fmt.Sprintf("hooked point %s is not registered", id))
	}
	return problems
}

// LoopHooksOutsideFor lists loop hooks not lexically inside a for
// statement (usually an instrumentation mistake).
func (inv *Inventory) LoopHooksOutsideFor() []Site {
	var out []Site
	for _, s := range inv.Sites {
		if s.Kind == HookLoop && !s.InFor {
			out = append(out, s)
		}
	}
	return out
}
