// Package inject is CSnake's runtime agent (§4.2): the hooks the target
// systems are instrumented with, and the per-run injection plan that
// decides when a hook fires a fault. The paper instruments Java bytecode
// with Byteman; this reproduction writes the hooks into the Go source and
// verifies their inventory with a real static analyzer (internal/analyzer).
//
// Hook semantics follow §4.2:
//   - Exception (throw / library-call) injection is one-time: the first
//     time the hook is reached, the guard is forced to fire.
//   - Negation injection is persistent: every call to the error detector
//     returns the negated value.
//   - Delay (contention) injection adds a fixed spinning delay before
//     every iteration of the target loop; seven magnitudes between 100ms
//     and 8s are swept per the paper.
//
// Every hook doubles as a monitor point: it records coverage, natural
// activations with local state, loop iteration counts, and branch
// evaluations for the local compatibility check (§6.2).
//
// Hooks are on the simulation hot path (they run once per monitored event
// across millions of events per campaign), so recording is engineered to
// be allocation-free in steady state: counters land in trace.Run's flat
// dense-id slices (one read-only index lookup, then array increments),
// occurrence captures reuse the engine's interned 2-frame stacks and the
// proc's copy-on-write branch trace instead of copying slices per
// activation.
package inject

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DelayMagnitudes are the seven spinning-delay lengths swept for each
// delay injection (§4.2: 100ms to 8s, empirically chosen to trip the
// systems' reduced 10-20s timeouts when applied repeatedly inside loops).
var DelayMagnitudes = []time.Duration{
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	4 * time.Second,
	8 * time.Second,
}

// PlanKind selects what a Plan injects.
type PlanKind int

const (
	// None runs the workload uninstrumented by faults: the profile run.
	None PlanKind = iota
	// Exception forces a one-time throw at the target point.
	Exception
	// Negate persistently negates the target error detector.
	Negate
	// Delay adds a spinning delay to each iteration of the target loop.
	Delay
)

func (k PlanKind) String() string {
	switch k {
	case None:
		return "profile"
	case Exception:
		return "exception"
	case Negate:
		return "negate"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan describes one injection experiment.
type Plan struct {
	Kind   PlanKind
	Target faults.ID
	// Delay is the spin length for Kind == Delay.
	Delay time.Duration
}

// PlanFor derives the injection plan kind for a point.
func PlanFor(pt faults.Point, delay time.Duration) Plan {
	switch pt.Kind {
	case faults.Negation:
		return Plan{Kind: Negate, Target: pt.ID}
	case faults.Loop:
		return Plan{Kind: Delay, Target: pt.ID, Delay: delay}
	default:
		return Plan{Kind: Exception, Target: pt.ID}
	}
}

// Profile returns the no-injection plan.
func Profile() Plan { return Plan{Kind: None} }

// InjectedError is the error value produced by fired exception guards.
type InjectedError struct {
	ID  faults.ID
	Msg string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("%s: %s", e.ID, e.Msg)
}

// Runtime is the per-run agent consulted by every hook. A Runtime is bound
// to exactly one simulated run. When Rec is nil the hooks skip all
// monitoring (used by the §8.5 overhead baseline) but still honour the
// plan.
type Runtime struct {
	Plan Plan
	Rec  *trace.Run

	excFired bool
	negFired bool
}

// New returns a Runtime executing plan and recording into rec (which may
// be nil to disable monitoring).
func New(plan Plan, rec *trace.Run) *Runtime {
	return &Runtime{Plan: plan, Rec: rec}
}

func (rt *Runtime) capture(p *sim.Proc) trace.Occurrence {
	return trace.Occurrence{Stack: p.Stack(), Branches: p.LocalBranches()}
}

// Guard instruments a throw point or library-call site: cond is the
// natural condition under which the system itself would raise the fault.
// Guard returns whether the fault should be raised, either naturally or by
// injection. The instrumented code raises its error when Guard returns
// true:
//
//	if env.Guard(p, "dfs.ibr.rpc_ioe", resp.Err != nil) {
//	    return fmt.Errorf("IBR rpc failed")
//	}
func (rt *Runtime) Guard(p *sim.Proc, id faults.ID, cond bool) bool {
	injected := false
	if rt.Plan.Kind == Exception && rt.Plan.Target == id && !rt.excFired {
		rt.excFired = true
		injected = true
	}
	if rt.Rec != nil {
		// Note: the guard's own outcome is deliberately NOT added to the
		// frame's local branch trace. The compatibility check compares
		// the context *around* a fault (the explicit monitor points of
		// Figure 4); recording the guard itself would make any injected
		// activation trivially incompatible with natural ones, since
		// injection forces the throw branch precisely when the natural
		// condition is absent.
		switch {
		case injected:
			rt.Rec.Cover(id, p.Now())
			rt.Rec.InjFired = true
			rt.Rec.InjSite = rt.capture(p)
		case cond:
			// Fused Cover+Activate: one dense lookup on the hot path.
			rt.Rec.CoverActivate(id, p.Now(), rt.capture(p))
		default:
			rt.Rec.Cover(id, p.Now())
		}
	}
	return cond || injected
}

// Err is a convenience wrapper around Guard that materialises the error.
func (rt *Runtime) Err(p *sim.Proc, id faults.ID, cond bool, msg string) error {
	if rt.Guard(p, id, cond) {
		return &InjectedError{ID: id, Msg: msg}
	}
	return nil
}

// Negate instruments a boolean error detector. v is the detector's
// computed value and errVal the polarity that signals an error (e.g.
// isStale: errVal=true; canPlaceFavoredNodes: errVal=false). The returned
// value is v, negated persistently when this detector is the injection
// target.
func (rt *Runtime) Negate(p *sim.Proc, id faults.ID, v, errVal bool) bool {
	injected := rt.Plan.Kind == Negate && rt.Plan.Target == id
	out := v
	if injected {
		out = !v
	}
	if rt.Rec != nil {
		if v == errVal {
			// The detector observed the error on its own: a natural
			// activation even under injection (which would mask it).
			// Fused Cover+Activate: one dense lookup on the hot path.
			rt.Rec.CoverActivate(id, p.Now(), rt.capture(p))
		} else {
			rt.Rec.Cover(id, p.Now())
		}
		if injected && !rt.negFired {
			rt.negFired = true
			rt.Rec.InjFired = true
			rt.Rec.InjSite = rt.capture(p)
		}
	}
	return out
}

// Loop instruments one iteration of a monitored loop: call it at the top
// of the loop body. It resets the frame-local branch trace so occurrence
// states carry only the fault-happening iteration (§6.2), counts the
// iteration, and applies the planned spinning delay.
func (rt *Runtime) Loop(p *sim.Proc, id faults.ID) {
	if rt.Rec != nil {
		// Fused Cover+LoopIter (one dense lookup per iteration); the
		// calling-context capture -- an interned-stack read plus a second
		// lookup -- happens only on the first iteration of each loop.
		if rt.Rec.LoopTick(id, p.Now()) {
			rt.Rec.SeeLoop(id, trace.Occurrence{Stack: p.Stack()})
		}
		p.ResetLocalBranches()
	}
	if rt.Plan.Kind == Delay && rt.Plan.Target == id {
		if rt.Rec != nil && !rt.Rec.InjFired {
			rt.Rec.InjFired = true
			rt.Rec.InjSite = rt.capture(p)
		}
		p.Sleep(rt.Plan.Delay)
	}
}

// Branch instruments a monitor-only branch near fault points; it records
// the evaluation and passes cond through so it nests in conditions:
//
//	if env.Branch(p, "dfs.createTmp.last_found", current == last) { ... }
func (rt *Runtime) Branch(p *sim.Proc, id faults.ID, cond bool) bool {
	if rt.Rec != nil {
		rt.Rec.Cover(id, p.Now())
		p.RecordBranch(string(id), cond)
	}
	return cond
}

// Fn pushes a named call-stack frame; use as: defer env.Fn(p, "createTmp")().
func (rt *Runtime) Fn(p *sim.Proc, name string) func() {
	return p.Enter(name)
}
