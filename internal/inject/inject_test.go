package inject

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runWith executes body as a single simulated process with the given plan
// and returns the recorded trace.
func runWith(t *testing.T, plan Plan, body func(p *sim.Proc, rt *Runtime)) *trace.Run {
	t.Helper()
	rec := trace.NewRun("test", 1)
	rt := New(plan, rec)
	e := sim.NewEngine(sim.Options{Seed: 1})
	e.Spawn("n1", "main", func(p *sim.Proc) { body(p, rt) })
	e.Run(time.Hour)
	e.Close()
	return rec
}

func TestGuardNaturalActivation(t *testing.T) {
	rec := runWith(t, Profile(), func(p *sim.Proc, rt *Runtime) {
		defer rt.Fn(p, "handler")()
		if !rt.Guard(p, "sys.throw", true) {
			t.Error("natural condition suppressed")
		}
	})
	if rec.Reached("sys.throw") != 1 {
		t.Fatalf("Reached = %d, want 1", rec.Reached("sys.throw"))
	}
	if !rec.Covered("sys.throw") {
		t.Fatal("coverage not recorded")
	}
	if rec.InjFired {
		t.Fatal("profile run reported injection")
	}
}

func TestGuardInjectionIsOneTime(t *testing.T) {
	fires := 0
	rec := runWith(t, Plan{Kind: Exception, Target: "sys.throw"}, func(p *sim.Proc, rt *Runtime) {
		for i := 0; i < 5; i++ {
			if rt.Guard(p, "sys.throw", false) {
				fires++
			}
		}
	})
	if fires != 1 {
		t.Fatalf("injected throw fired %d times, want 1 (one-time)", fires)
	}
	if !rec.InjFired {
		t.Fatal("InjFired not set")
	}
	if rec.Reached("sys.throw") != 0 {
		t.Fatalf("injected activation counted as natural: %d", rec.Reached("sys.throw"))
	}
}

func TestGuardInjectionDoesNotLeakToOtherPoints(t *testing.T) {
	runWith(t, Plan{Kind: Exception, Target: "sys.other"}, func(p *sim.Proc, rt *Runtime) {
		if rt.Guard(p, "sys.throw", false) {
			t.Error("guard fired for non-target point")
		}
	})
}

func TestErrReturnsInjectedError(t *testing.T) {
	runWith(t, Plan{Kind: Exception, Target: "sys.ioe"}, func(p *sim.Proc, rt *Runtime) {
		err := rt.Err(p, "sys.ioe", false, "io failure")
		if err == nil {
			t.Error("want injected error")
			return
		}
		var ie *InjectedError
		if !errors.As(err, &ie) || ie.ID != "sys.ioe" {
			t.Errorf("unexpected error: %v", err)
		}
	})
}

func TestNegatePersistent(t *testing.T) {
	negated := 0
	rec := runWith(t, Plan{Kind: Negate, Target: "sys.isStale"}, func(p *sim.Proc, rt *Runtime) {
		for i := 0; i < 4; i++ {
			// Detector naturally healthy (false); errVal=true means
			// "stale". Under injection every call reports stale.
			if rt.Negate(p, "sys.isStale", false, true) {
				negated++
			}
		}
	})
	if negated != 4 {
		t.Fatalf("negated %d of 4 calls, want all (persistent)", negated)
	}
	if !rec.InjFired {
		t.Fatal("InjFired not set")
	}
	if rec.Reached("sys.isStale") != 0 {
		t.Fatal("injected negation counted as natural activation")
	}
}

func TestNegateNaturalErrorRecorded(t *testing.T) {
	rec := runWith(t, Profile(), func(p *sim.Proc, rt *Runtime) {
		rt.Negate(p, "sys.isStale", true, true) // naturally stale
		rt.Negate(p, "sys.isStale", false, true)
	})
	if rec.Reached("sys.isStale") != 1 {
		t.Fatalf("natural error activations = %d, want 1", rec.Reached("sys.isStale"))
	}
}

func TestLoopCountsAndDelayInjection(t *testing.T) {
	var virtual time.Duration
	rec := runWith(t, Plan{Kind: Delay, Target: "sys.loop", Delay: time.Second}, func(p *sim.Proc, rt *Runtime) {
		start := p.Now()
		for i := 0; i < 3; i++ {
			rt.Loop(p, "sys.loop")
		}
		virtual = p.Now() - start
	})
	if rec.LoopIters("sys.loop") != 3 {
		t.Fatalf("iters = %d, want 3", rec.LoopIters("sys.loop"))
	}
	if virtual != 3*time.Second {
		t.Fatalf("delay injected %v, want 3s (1s per iteration)", virtual)
	}
	if !rec.InjFired {
		t.Fatal("InjFired not set for delay")
	}
}

func TestLoopNoDelayWhenNotTarget(t *testing.T) {
	var virtual time.Duration
	runWith(t, Plan{Kind: Delay, Target: "sys.otherloop", Delay: time.Second}, func(p *sim.Proc, rt *Runtime) {
		start := p.Now()
		rt.Loop(p, "sys.loop")
		virtual = p.Now() - start
	})
	if virtual != 0 {
		t.Fatalf("non-target loop delayed by %v", virtual)
	}
}

func TestLoopResetsLocalBranchTrace(t *testing.T) {
	rec := runWith(t, Profile(), func(p *sim.Proc, rt *Runtime) {
		defer rt.Fn(p, "createTmp")()
		for i := 0; i < 2; i++ {
			rt.Loop(p, "sys.loop")
			rt.Branch(p, "sys.branch", i == 1)
			if i == 1 {
				rt.Guard(p, "sys.throw", true)
			}
		}
	})
	occ := rec.OccOf("sys.throw")
	if len(occ) != 1 {
		t.Fatalf("occurrences = %d, want 1", len(occ))
	}
	// The occurrence's branch trace must cover only the fault-happening
	// iteration: the explicit monitor point, not the guard itself.
	if len(occ[0].Branches) != 1 {
		t.Fatalf("branch trace = %v, want 1 entry from final iteration", occ[0].Branches)
	}
	if occ[0].Branches[0].ID != "sys.branch" || !occ[0].Branches[0].Taken {
		t.Fatalf("branch trace[0] = %v", occ[0].Branches[0])
	}
}

func TestOccurrenceCapturesTwoLevelStack(t *testing.T) {
	rec := runWith(t, Profile(), func(p *sim.Proc, rt *Runtime) {
		defer rt.Fn(p, "BlockReceiver")()
		func() {
			defer rt.Fn(p, "createTmp")()
			rt.Guard(p, "sys.throw", true)
		}()
	})
	occ := rec.OccOf("sys.throw")
	if len(occ) != 1 {
		t.Fatalf("occurrences = %d, want 1", len(occ))
	}
	if len(occ[0].Stack) != 2 || occ[0].Stack[0] != "BlockReceiver" || occ[0].Stack[1] != "createTmp" {
		t.Fatalf("stack = %v, want [BlockReceiver createTmp]", occ[0].Stack)
	}
}

func TestOccurrenceCapIsEnforced(t *testing.T) {
	rec := runWith(t, Profile(), func(p *sim.Proc, rt *Runtime) {
		for i := 0; i < trace.OccCap+10; i++ {
			rt.Guard(p, "sys.throw", true)
		}
	})
	if got := len(rec.OccOf("sys.throw")); got != trace.OccCap {
		t.Fatalf("stored %d occurrences, want cap %d", got, trace.OccCap)
	}
	if rec.Reached("sys.throw") != trace.OccCap+10 {
		t.Fatalf("Reached = %d, want %d", rec.Reached("sys.throw"), trace.OccCap+10)
	}
}

func TestNilRecorderDisablesMonitoringButKeepsInjection(t *testing.T) {
	rt := New(Plan{Kind: Exception, Target: "sys.throw"}, nil)
	e := sim.NewEngine(sim.Options{Seed: 1})
	fired := false
	e.Spawn("n1", "main", func(p *sim.Proc) {
		fired = rt.Guard(p, "sys.throw", false)
	})
	e.Run(time.Hour)
	e.Close()
	if !fired {
		t.Fatal("injection suppressed with nil recorder")
	}
}

func TestPlanForMapsPointKinds(t *testing.T) {
	if p := PlanFor(faults.Point{ID: "a", Kind: faults.Loop}, time.Second); p.Kind != Delay || p.Delay != time.Second {
		t.Errorf("loop plan = %+v", p)
	}
	if p := PlanFor(faults.Point{ID: "a", Kind: faults.Negation}, 0); p.Kind != Negate {
		t.Errorf("negation plan = %+v", p)
	}
	if p := PlanFor(faults.Point{ID: "a", Kind: faults.Throw}, 0); p.Kind != Exception {
		t.Errorf("throw plan = %+v", p)
	}
	if p := PlanFor(faults.Point{ID: "a", Kind: faults.LibCall}, 0); p.Kind != Exception {
		t.Errorf("libcall plan = %+v", p)
	}
}

func TestDelayMagnitudesMatchPaperRange(t *testing.T) {
	if len(DelayMagnitudes) != 7 {
		t.Fatalf("len = %d, want 7", len(DelayMagnitudes))
	}
	if DelayMagnitudes[0] != 100*time.Millisecond || DelayMagnitudes[6] != 8*time.Second {
		t.Fatalf("range = [%v, %v], want [100ms, 8s]", DelayMagnitudes[0], DelayMagnitudes[6])
	}
	for i := 1; i < len(DelayMagnitudes); i++ {
		if DelayMagnitudes[i] <= DelayMagnitudes[i-1] {
			t.Fatal("magnitudes not strictly increasing")
		}
	}
}
