// Package faults defines CSnake's fault model: the kinds of injectable
// faults (§4.1), the static attributes used by the analyzer's filtering
// rules (§4.1, §7), the loop nesting relations behind the ICFG/CFG causal
// edges (§4.3), and the six causal edge kinds of Table 1.
package faults

import "fmt"

// ID uniquely names an injection or monitor point. By convention IDs are
// dotted paths: "<system>.<component>.<point>", e.g. "dfs.ibr.rpc_ioe".
type ID string

// PointKind classifies an injection point.
type PointKind int

const (
	// Throw marks a system-specific exception site: an if-guarded throw
	// inside the target system's own code. Injection forces the guard to
	// fire once.
	Throw PointKind = iota
	// LibCall marks a library/native function invocation site whose
	// declared exception is injected at the call.
	LibCall
	// Negation marks a boolean-returning system-specific error detector
	// (e.g. node.isStale()); injection negates its return value.
	Negation
	// Loop marks a workload-related loop eligible for spinning-delay
	// (contention) injection; its iteration count is also monitored.
	Loop
)

func (k PointKind) String() string {
	switch k {
	case Throw:
		return "throw"
	case LibCall:
		return "libcall"
	case Negation:
		return "negation"
	case Loop:
		return "loop"
	default:
		return fmt.Sprintf("PointKind(%d)", int(k))
	}
}

// FaultClass is the dynamic class of a fault as it appears in causal
// edges: Table 1 distinguishes delays from exceptions/negations.
type FaultClass int

const (
	ClassException FaultClass = iota // thrown exception (Throw or LibCall point)
	ClassNegation                    // negated error-detector return
	ClassDelay                       // contention on a loop
)

func (c FaultClass) String() string {
	switch c {
	case ClassException:
		return "exception"
	case ClassNegation:
		return "negation"
	case ClassDelay:
		return "delay"
	default:
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
}

// Class maps a point kind to its fault class.
func (k PointKind) Class() FaultClass {
	switch k {
	case Negation:
		return ClassNegation
	case Loop:
		return ClassDelay
	default:
		return ClassException
	}
}

// ExcCategory labels exception points for the §4.1 filtering rules.
type ExcCategory int

const (
	ExcSystem     ExcCategory = iota // system-specific exception: injected
	ExcLibrary                       // library function exception: injected
	ExcReflection                    // reflection-related: filtered out
	ExcSecurity                      // security-related: filtered out
)

func (c ExcCategory) String() string {
	switch c {
	case ExcSystem:
		return "system"
	case ExcLibrary:
		return "library"
	case ExcReflection:
		return "reflection"
	case ExcSecurity:
		return "security"
	default:
		return fmt.Sprintf("ExcCategory(%d)", int(c))
	}
}

// Point is a statically-identified injection or monitor point, together
// with the attributes the filtering rules consult.
type Point struct {
	ID     ID
	Kind   PointKind
	System string
	// Func is the enclosing function name, matching the sim call-stack
	// frames pushed by the instrumented code.
	Func string
	Desc string

	// Exception attributes (§4.1).
	Category ExcCategory
	TestOnly bool // exception only reachable from tests: filtered

	// Loop attributes (§4.1 loop scalability analysis).
	ConstBound bool // constant upper bound on iterations: filtered
	HasIO      bool // loop body (transitively) performs I/O
	BodySize   int  // code reachable from the loop, for the bottom-10% rank

	// Negation attributes (§7 system-specific error filtering).
	ConfigOnly    bool // return computed only from final/config vars: filtered
	ConstReturn   bool // constant or unused return value: filtered
	PrimitiveOnly bool // primitive-only utility computation: filtered
}

// Injectable reports whether the point survives CSnake's conservative
// static filtering and participates in the fault space F.
func (pt Point) Injectable() bool {
	switch pt.Kind {
	case Throw, LibCall:
		return pt.Category != ExcReflection && pt.Category != ExcSecurity && !pt.TestOnly
	case Negation:
		return !pt.ConfigOnly && !pt.ConstReturn && !pt.PrimitiveOnly
	case Loop:
		return !pt.ConstBound
	default:
		return false
	}
}

// LoopNest declares one level of loop nesting: Parent directly contains
// Children, listed in program order. Consecutive children are siblings in
// the same batch (§4.3, Figure 5).
type LoopNest struct {
	Parent   ID
	Children []ID
}

// EdgeKind is one of the six causal relationship kinds of Table 1.
type EdgeKind int

const (
	// ED: injecting a delay causes an additional exception or negation
	// (execution trace interference of a delay).
	ED EdgeKind = iota
	// SD: injecting a delay causes a statistically significant iteration
	// increase in another loop.
	SD
	// EI: injecting an exception/negation causes an additional
	// exception or negation.
	EI
	// SI: injecting an exception/negation causes a loop iteration
	// increase.
	SI
	// ICFG: a delayed child loop propagates delay to its parent loop
	// (static, from LoopNest).
	ICFG
	// CFG: a delayed parent loop propagates delay to the next sibling
	// loop (static, from LoopNest).
	CFG
)

// Static reports whether the kind is one of the statically-derived loop
// connectors (ICFG/CFG): edges that carry no test or injection evidence.
func (k EdgeKind) Static() bool { return k == ICFG || k == CFG }

func (k EdgeKind) String() string {
	switch k {
	case ED:
		return "E(D)"
	case SD:
		return "S+(D)"
	case EI:
		return "E(I)"
	case SI:
		return "S+(I)"
	case ICFG:
		return "ICFG"
	case CFG:
		return "CFG"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Space is a resolved fault space: the injectable points of one system
// plus derived lookup tables. Every point carries a dense int index (its
// position in Points, assigned once at construction): the trace-recording
// hot path and other per-event consumers address flat slices by dense id
// instead of hashing string IDs.
type Space struct {
	Points []Point
	Nests  []LoopNest

	byID map[ID]int // ID -> dense index into Points
}

// NewSpace builds a Space from raw points and nests, applying both the
// per-point filters and the relative loop-scalability filter: loops in the
// lowest-ranked 10% by reachable code size that do not perform I/O are
// excluded (§4.1).
func NewSpace(points []Point, nests []LoopNest) *Space {
	shortCut := shortLoopCutoff(points)
	s := &Space{Nests: nests, byID: make(map[ID]int, len(points))}
	for _, pt := range points {
		if !pt.Injectable() {
			continue
		}
		if pt.Kind == Loop && !pt.HasIO && pt.BodySize <= shortCut {
			continue
		}
		s.byID[pt.ID] = len(s.Points)
		s.Points = append(s.Points, pt)
	}
	return s
}

// shortLoopCutoff returns the body-size value at the bottom-decile rank of
// all loop points, or -1 when there are too few loops to rank.
func shortLoopCutoff(points []Point) int {
	var sizes []int
	for _, pt := range points {
		if pt.Kind == Loop {
			sizes = append(sizes, pt.BodySize)
		}
	}
	if len(sizes) < 10 {
		return -1
	}
	// Insertion sort: the slice is small and this keeps us allocation-free.
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes[len(sizes)/10-1]
}

// Lookup returns the point for id if it is part of the injectable space.
func (s *Space) Lookup(id ID) (Point, bool) {
	if i, ok := s.byID[id]; ok {
		return s.Points[i], true
	}
	return Point{}, false
}

// Index returns the dense index of id within the space. Dense indices are
// stable for the lifetime of the Space and cover [0, Size()).
func (s *Space) Index(id ID) (int, bool) {
	i, ok := s.byID[id]
	return i, ok
}

// IDAt returns the fault ID at dense index i.
func (s *Space) IDAt(i int) ID { return s.Points[i].ID }

// PointAt returns the point at dense index i.
func (s *Space) PointAt(i int) Point { return s.Points[i] }

// Class returns the fault class of id, defaulting to exception when the
// point is unknown (conservative for edge typing).
func (s *Space) Class(id ID) FaultClass {
	if i, ok := s.byID[id]; ok {
		return s.Points[i].Kind.Class()
	}
	return ClassException
}

// IDs returns the ids of all injectable points, in declaration order.
func (s *Space) IDs() []ID {
	out := make([]ID, len(s.Points))
	for i, pt := range s.Points {
		out[i] = pt.ID
	}
	return out
}

// Size returns |F|, the number of injectable faults.
func (s *Space) Size() int { return len(s.Points) }
