package faults

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPointKindClass(t *testing.T) {
	cases := []struct {
		kind PointKind
		want FaultClass
	}{
		{Throw, ClassException},
		{LibCall, ClassException},
		{Negation, ClassNegation},
		{Loop, ClassDelay},
	}
	for _, c := range cases {
		if got := c.kind.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.kind, got, c.want)
		}
	}
}

func TestInjectableExceptionFiltering(t *testing.T) {
	cases := []struct {
		name string
		pt   Point
		want bool
	}{
		{"system exception kept", Point{Kind: Throw, Category: ExcSystem}, true},
		{"library exception kept", Point{Kind: LibCall, Category: ExcLibrary}, true},
		{"reflection filtered", Point{Kind: Throw, Category: ExcReflection}, false},
		{"security filtered", Point{Kind: Throw, Category: ExcSecurity}, false},
		{"test-only filtered", Point{Kind: Throw, Category: ExcSystem, TestOnly: true}, false},
	}
	for _, c := range cases {
		if got := c.pt.Injectable(); got != c.want {
			t.Errorf("%s: Injectable() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInjectableNegationFiltering(t *testing.T) {
	cases := []struct {
		name string
		pt   Point
		want bool
	}{
		{"real detector kept", Point{Kind: Negation}, true},
		{"config-only filtered", Point{Kind: Negation, ConfigOnly: true}, false},
		{"constant return filtered", Point{Kind: Negation, ConstReturn: true}, false},
		{"primitive-only util filtered", Point{Kind: Negation, PrimitiveOnly: true}, false},
	}
	for _, c := range cases {
		if got := c.pt.Injectable(); got != c.want {
			t.Errorf("%s: Injectable() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInjectableLoopConstBoundFiltered(t *testing.T) {
	if (Point{Kind: Loop, ConstBound: true}).Injectable() {
		t.Error("constant-bound loop should be filtered")
	}
	if !(Point{Kind: Loop}).Injectable() {
		t.Error("workload-related loop should be kept")
	}
}

func TestSpaceShortLoopDecileFilter(t *testing.T) {
	// 20 loops with body sizes 1..20; the bottom decile (sizes 1, 2) is
	// excluded unless the loop performs I/O.
	var pts []Point
	for i := 1; i <= 20; i++ {
		pts = append(pts, Point{
			ID:       ID(fmt.Sprintf("sys.loop%02d", i)),
			Kind:     Loop,
			BodySize: i,
			HasIO:    i == 1, // smallest loop does I/O: must survive
		})
	}
	s := NewSpace(pts, nil)
	if _, ok := s.Lookup("sys.loop01"); !ok {
		t.Error("small loop with I/O was filtered, want kept")
	}
	if _, ok := s.Lookup("sys.loop02"); ok {
		t.Error("small non-I/O loop survived, want filtered")
	}
	if _, ok := s.Lookup("sys.loop03"); !ok {
		t.Error("size-3 loop filtered, want kept (above bottom decile)")
	}
	if s.Size() != 19 {
		t.Errorf("space size = %d, want 19", s.Size())
	}
}

func TestSpaceFewLoopsNoDecileFilter(t *testing.T) {
	pts := []Point{
		{ID: "a.l1", Kind: Loop, BodySize: 1},
		{ID: "a.l2", Kind: Loop, BodySize: 2},
	}
	s := NewSpace(pts, nil)
	if s.Size() != 2 {
		t.Errorf("size = %d, want 2 (no rank filter under 10 loops)", s.Size())
	}
}

func TestSpaceLookupAndClass(t *testing.T) {
	s := NewSpace([]Point{
		{ID: "x.throw", Kind: Throw},
		{ID: "x.neg", Kind: Negation},
		{ID: "x.loop", Kind: Loop},
	}, nil)
	if got := s.Class("x.neg"); got != ClassNegation {
		t.Errorf("Class(x.neg) = %v", got)
	}
	if got := s.Class("x.loop"); got != ClassDelay {
		t.Errorf("Class(x.loop) = %v", got)
	}
	if got := s.Class("unknown"); got != ClassException {
		t.Errorf("Class(unknown) = %v, want exception default", got)
	}
	ids := s.IDs()
	if len(ids) != 3 || ids[0] != "x.throw" {
		t.Errorf("IDs() = %v", ids)
	}
}

func TestEdgeKindStrings(t *testing.T) {
	want := map[EdgeKind]string{
		ED: "E(D)", SD: "S+(D)", EI: "E(I)", SI: "S+(I)", ICFG: "ICFG", CFG: "CFG",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestShortLoopCutoffProperty(t *testing.T) {
	// Property: the cutoff never exceeds the maximum size and at most 10%
	// of non-I/O loops fall at or below it.
	f := func(sizes []uint8) bool {
		if len(sizes) < 10 {
			return true
		}
		var pts []Point
		for i, sz := range sizes {
			pts = append(pts, Point{ID: ID(fmt.Sprintf("l%d", i)), Kind: Loop, BodySize: int(sz)})
		}
		cut := shortLoopCutoff(pts)
		atOrBelow := 0
		for _, sz := range sizes {
			if int(sz) <= cut {
				atOrBelow++
			}
		}
		// With ties the count can exceed the decile, but the rank index
		// itself is len/10, so at least that many are at or below.
		return atOrBelow >= len(sizes)/10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
