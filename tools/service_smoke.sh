#!/usr/bin/env bash
# Daemon smoke test for csnaked: build and start the server, then drive
# the full client journey with curl -- submit a MetaStore early-stop
# campaign, stream its rounds over SSE, read the report (both seeded
# Raft storms must be detected), run a second campaign, merge the two
# persisted graphs server-side, and fetch the merged artifact. Then the
# monitor journey: export a campaign trace with csnake -trace-out,
# create a monitor, ingest the trace over HTTP, and require the SSE
# alert stream to carry both seeded storm fault ids. Then the crash
# journey: kill -9 the daemon mid-campaign, restart it on the same
# data directory, and require the journal-recovered job to resume and
# still detect both storms. CI runs this; it also works locally:
#
#   ./tools/service_smoke.sh
set -euo pipefail

ADDR="127.0.0.1:${CSNAKED_PORT:-8344}"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
BIN="$WORKDIR/csnaked"

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "--- build"
go build -o "$BIN" ./cmd/csnaked

echo "--- start csnaked on $ADDR"
"$BIN" -addr "$ADDR" -data "$WORKDIR/graphs" &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "daemon died before becoming healthy" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "daemon never became healthy" >&2; exit 1; }

SPEC='{"system":"metastore","seed":42,"reps":3,"delayMagnitudesMs":[500,2000,8000],"earlyStopRounds":3,"waveSize":4}'

echo "--- submit campaign"
JOB=$(curl -sf -X POST "$BASE/v1/campaigns" -d "$SPEC" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "submit returned no job id" >&2; exit 1; }
echo "job: $JOB"

echo "--- stream events (SSE)"
# The stream ends on its own after the terminal state event.
EVENTS=$(curl -sf -N --max-time 120 "$BASE/v1/campaigns/$JOB/events")
echo "$EVENTS" | grep -q '^event: round' || { echo "no round events in SSE stream" >&2; exit 1; }
echo "$EVENTS" | grep -q '"state":"succeeded"' || { echo "stream did not end in success" >&2; exit 1; }
echo "rounds streamed: $(echo "$EVENTS" | grep -c '^event: round')"

echo "--- status + report"
# The stream's terminal event and the status update are one transition,
# but give the final write a moment on slow runners.
for i in $(seq 1 20); do
  curl -sf "$BASE/v1/campaigns/$JOB" | grep -q '"state": "succeeded"' && break
  sleep 0.2
done
curl -sf "$BASE/v1/campaigns/$JOB" | grep -q '"state": "succeeded"'
REPORT=$(curl -sf "$BASE/v1/campaigns/$JOB/report")
echo "$REPORT" | grep -q 'RAFT-1' || { echo "report missing RAFT-1" >&2; exit 1; }
echo "$REPORT" | grep -q 'RAFT-2' || { echo "report missing RAFT-2" >&2; exit 1; }
echo "detected both seeded storms"

echo "--- second campaign (seed 43)"
SPEC2='{"system":"metastore","seed":43,"reps":3,"delayMagnitudesMs":[500,2000,8000],"earlyStopRounds":3,"waveSize":4}'
JOB2=$(curl -sf -X POST "$BASE/v1/campaigns" -d "$SPEC2" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
for i in $(seq 1 300); do
  STATE=$(curl -sf "$BASE/v1/campaigns/$JOB2" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
  [ "$STATE" = succeeded ] && break
  case "$STATE" in failed|cancelled) echo "second campaign $STATE" >&2; exit 1 ;; esac
  sleep 0.5
done
[ "$STATE" = succeeded ] || { echo "second campaign never finished" >&2; exit 1; }

echo "--- merge graphs server-side"
G1=$(curl -sf "$BASE/v1/campaigns/$JOB" | sed -n 's/.*"graphId": "\([^"]*\)".*/\1/p')
G2=$(curl -sf "$BASE/v1/campaigns/$JOB2" | sed -n 's/.*"graphId": "\([^"]*\)".*/\1/p')
[ -n "$G1" ] && [ -n "$G2" ] || { echo "missing graph artifacts" >&2; exit 1; }
MERGE=$(curl -sf -X POST "$BASE/v1/graphs/merge" -d "{\"graphs\":[\"$G1\",\"$G2\"],\"research\":true}")
echo "$MERGE" | grep -q '"cycles"' || { echo "merge re-search returned no cycles" >&2; exit 1; }
MERGED=$(echo "$MERGE" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1)

echo "--- fetch merged graph $MERGED"
curl -sf "$BASE/v1/graphs/$MERGED" | grep -q '"version"' || { echo "merged graph not served" >&2; exit 1; }
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q '^csnaked_jobs_succeeded_total 2' || { echo "metrics wrong" >&2; exit 1; }
for counter in csnaked_jobs_retries_total csnaked_jobs_resumed_total csnaked_jobs_panics_total csnaked_admission_rejected_total; do
  echo "$METRICS" | grep -q "^$counter " || { echo "metrics missing $counter" >&2; exit 1; }
done

echo "--- online monitor: export a trace, ingest over HTTP, read SSE alerts"
go build -o "$WORKDIR/csnake" ./cmd/csnake
"$WORKDIR/csnake" -system metastore -fast -seed 42 -early-stop 3 -wave 4 \
  -trace-out "$WORKDIR/trace.jsonl" >/dev/null
[ -s "$WORKDIR/trace.jsonl" ] || { echo "csnake exported no trace" >&2; exit 1; }
MON=$(curl -sf -X POST "$BASE/v1/monitors" -d '{"name":"smoke"}' | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1)
[ -n "$MON" ] || { echo "monitor create returned no id" >&2; exit 1; }
echo "monitor: $MON"
INGEST=$(curl -sf -X POST --data-binary "@$WORKDIR/trace.jsonl" "$BASE/v1/monitors/$MON/events")
echo "$INGEST" | grep -q '"skipped": 0' || { echo "monitor skipped records from a clean trace" >&2; exit 1; }
ALERTS=$(curl -sf -N --max-time 30 "$BASE/v1/monitors/$MON/alerts?follow=0")
echo "$ALERTS" | grep -q '^event: alert' || { echo "no alert events in SSE stream" >&2; exit 1; }
echo "$ALERTS" | grep -q 'ms.node.election_loop' || { echo "alerts missing RAFT-1 storm fault" >&2; exit 1; }
echo "$ALERTS" | grep -q 'ms.leader.snap.send_loop' || { echo "alerts missing RAFT-2 storm fault" >&2; exit 1; }
echo "alerts streamed: $(echo "$ALERTS" | grep -c '^event: alert')"
curl -sf "$BASE/v1/monitors/$MON" | grep -q '"cyclesActive"' || { echo "monitor status missing stats" >&2; exit 1; }
METRICS=$(curl -sf "$BASE/metrics")
echo "$METRICS" | grep -q '^csnaked_monitors_active 1' || { echo "metrics missing active monitor" >&2; exit 1; }
for counter in csnaked_monitor_records_total csnaked_monitor_skipped_total csnaked_monitor_alerts_total; do
  echo "$METRICS" | grep -q "^$counter " || { echo "metrics missing $counter" >&2; exit 1; }
done
echo "monitor detected both seeded storms from the ingested trace"

echo "--- crash recovery: kill -9 mid-campaign, restart, resume"
SPEC3='{"system":"metastore","seed":44,"reps":3,"delayMagnitudesMs":[500,2000,8000],"earlyStopRounds":3,"waveSize":4}'
JOB3=$(curl -sf -X POST "$BASE/v1/campaigns" -d "$SPEC3" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$JOB3" ] || { echo "third submit returned no job id" >&2; exit 1; }
# Catch the campaign mid-flight: wait until at least one round sealed.
for i in $(seq 1 300); do
  curl -sf "$BASE/v1/campaigns/$JOB3" | grep -q '"round": 1' && break
  sleep 0.2
done
curl -sf "$BASE/v1/campaigns/$JOB3" | grep -q '"round": 1' || { echo "campaign never sealed a round" >&2; exit 1; }
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true

"$BIN" -addr "$ADDR" -data "$WORKDIR/graphs" &
DAEMON_PID=$!
for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$BASE/healthz" >/dev/null || { echo "daemon never came back after kill -9" >&2; exit 1; }

# The interrupted job is recovered from the journal and finishes.
for i in $(seq 1 300); do
  STATE=$(curl -sf "$BASE/v1/campaigns/$JOB3" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
  [ "$STATE" = succeeded ] && break
  case "$STATE" in failed|cancelled) echo "recovered campaign $STATE" >&2; exit 1 ;; esac
  sleep 0.5
done
[ "$STATE" = succeeded ] || { echo "recovered campaign never finished" >&2; exit 1; }
REPORT3=$(curl -sf "$BASE/v1/campaigns/$JOB3/report")
echo "$REPORT3" | grep -q 'RAFT-1' || { echo "resumed report missing RAFT-1" >&2; exit 1; }
echo "$REPORT3" | grep -q 'RAFT-2' || { echo "resumed report missing RAFT-2" >&2; exit 1; }
curl -sf "$BASE/v1/campaigns/$JOB3" | grep -q '"resumed": true' || { echo "recovered job not marked resumed" >&2; exit 1; }
curl -sf "$BASE/metrics" | grep -q '^csnaked_jobs_resumed_total 1' || { echo "resumed counter wrong" >&2; exit 1; }
echo "resumed after kill -9 and detected both storms"

echo "OK: daemon smoke passed"
