// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a stable JSON document mapping benchmark name to its
// ns/op, B/op, and allocs/op, for CI artifacts that track the perf
// trajectory across PRs:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./tools/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_op"`
	BytesPerOp float64 `json:"b_op,omitempty"`
	Allocs     float64 `json:"allocs_op,omitempty"`
	// Extra carries benchmark-specific ReportMetric values (edges, sims,
	// bugs, ...), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		// Strip the -N GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		r := Result{Iterations: iters, Extra: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.Allocs = v
			default:
				r.Extra[fields[i+1]] = v
			}
		}
		if len(r.Extra) == 0 {
			r.Extra = nil
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// encoding/json renders map keys in sorted order, so the document is
	// deterministic without any explicit ordering.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]interface{}{"benchmarks": results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
