// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a stable JSON document mapping benchmark name to its
// ns/op, B/op, and allocs/op, for CI artifacts that track the perf
// trajectory across PRs:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./tools/benchjson > BENCH.json
//
// With -delta it instead compares two such documents and prints the
// per-benchmark ns/op and allocs/op movement -- the CI benchmark-delta
// step runs it against the previous PR's committed baseline
// (non-blocking: deltas inform, they do not gate):
//
//	go run ./tools/benchjson -delta BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_op"`
	BytesPerOp float64 `json:"b_op,omitempty"`
	Allocs     float64 `json:"allocs_op,omitempty"`
	// Extra carries benchmark-specific ReportMetric values (edges, sims,
	// bugs, ...), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// document is the on-disk BENCH_*.json shape.
type document struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func loadDoc(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Benchmarks, nil
}

// printDelta renders the per-benchmark movement between two documents.
// Benchmarks present on only one side are listed as added/removed rather
// than failing the comparison: the suite grows PR over PR.
func printDelta(oldPath, newPath string) error {
	oldB, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	newB, err := loadDoc(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(newB))
	for name := range newB {
		names = append(names, name)
	}
	sort.Strings(names)
	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "     n/a"
		}
		return fmt.Sprintf("%+7.1f%%", 100*(newV/oldV-1))
	}
	fmt.Printf("benchmark delta: %s -> %s\n", oldPath, newPath)
	fmt.Printf("%-44s %14s %9s %12s %9s\n", "benchmark", "ns/op", "vs old", "allocs/op", "vs old")
	for _, name := range names {
		n := newB[name]
		o, ok := oldB[name]
		if !ok {
			fmt.Printf("%-44s %14.0f %9s %12.0f %9s\n", name, n.NsPerOp, "new", n.Allocs, "new")
			continue
		}
		fmt.Printf("%-44s %14.0f %9s %12.0f %9s\n",
			name, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp), n.Allocs, pct(o.Allocs, n.Allocs))
	}
	var removed []string
	for name := range oldB {
		if _, ok := newB[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Printf("%-44s %14s %9s %12s %9s\n", name, "-", "removed", "-", "removed")
	}
	return nil
}

func main() {
	delta := flag.Bool("delta", false, "compare two BENCH_*.json documents: benchjson -delta OLD NEW")
	flag.Parse()
	if *delta {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -delta OLD.json NEW.json")
			os.Exit(2)
		}
		if err := printDelta(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	results := map[string]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		// Strip the -N GOMAXPROCS suffix.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		r := Result{Iterations: iters, Extra: map[string]float64{}}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.Allocs = v
			default:
				r.Extra[fields[i+1]] = v
			}
		}
		if len(r.Extra) == 0 {
			r.Extra = nil
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// encoding/json renders map keys in sorted order, so the document is
	// deterministic without any explicit ordering.
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]interface{}{"benchmarks": results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
