// customsystem shows how to bring your own target system to CSnake: write
// the system against the simulator with injection hooks, declare its
// point inventory and workloads, register it with sysreg in init() (so
// any binary importing the package can resolve it by name), and run a
// campaign against it through the functional-options builder. Here the
// system is a deliberately tiny job queue with one seeded feedback bug: a
// job that fails is re-enqueued at the FRONT of the queue, so a slow
// worker turns one deadline miss into a permanent retry storm.
//
//	go run ./examples/customsystem
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/systems/sysreg"
)

const (
	ptWorkLoop faults.ID = "tiny.worker.loop"
	ptJobIOE   faults.ID = "tiny.job.deadline_ioe"
)

type job struct{ deadline time.Duration }

// runQueue builds the tiny system inside a workload.
func runQueue(ctx *sysreg.RunContext, jobs int, gap time.Duration) {
	eng, rt := ctx.Engine, ctx.RT
	q := eng.NewMailbox("srv", "jobs")

	eng.Spawn("srv", "worker", func(p *sim.Proc) {
		defer rt.Fn(p, "worker")()
		for {
			m, ok := p.Recv(q, -1)
			if !ok {
				return
			}
			j := m.(job)
			rt.Loop(p, ptWorkLoop)
			p.Work(300 * time.Millisecond)
			if rt.Guard(p, ptJobIOE, p.Now() > j.deadline) {
				// The bug: a failed job is retried with a TIGHTER
				// deadline than a fresh one, so a single miss keeps
				// missing forever -- a self-sustaining retry storm.
				p.Send(q, job{deadline: p.Now() + 200*time.Millisecond})
			}
		}
	})
	eng.Spawn("cli", "producer", func(p *sim.Proc) {
		for i := 0; i < jobs; i++ {
			p.Send(q, job{deadline: p.Now() + 2*time.Second})
			p.Sleep(gap)
		}
	})
}

type tinySystem struct{}

func (tinySystem) Name() string { return "TinyQueue" }
func (tinySystem) Points() []faults.Point {
	return []faults.Point{
		{ID: ptWorkLoop, Kind: faults.Loop, System: "TinyQueue", Func: "worker", BodySize: 10, HasIO: true},
		{ID: ptJobIOE, Kind: faults.Throw, System: "TinyQueue", Func: "worker"},
	}
}
func (tinySystem) Nests() []faults.LoopNest { return nil }
func (tinySystem) SourceDirs() []string     { return []string{"examples/customsystem"} }
func (tinySystem) Workloads() []sysreg.Workload {
	return []sysreg.Workload{
		{Name: "burst", Desc: "a burst of jobs", Horizon: 30 * time.Second,
			Run: func(ctx *sysreg.RunContext) { runQueue(ctx, 12, 450*time.Millisecond) }},
		{Name: "trickle", Desc: "a slow trickle", Horizon: 30 * time.Second,
			Run: func(ctx *sysreg.RunContext) { runQueue(ctx, 6, 2*time.Second) }},
	}
}
func (tinySystem) Bugs() []sysreg.Bug {
	return []sysreg.Bug{{
		ID: "TINY-1", Title: "Front-of-queue retry",
		CoreFaults: []faults.ID{ptWorkLoop, ptJobIOE},
		Delays:     1, Exceptions: 1, SingleTest: true,
	}}
}

// Self-registration: any binary importing this package can now resolve
// the system through sysreg.Lookup("TinyQueue") or "tinyqueue".
func init() {
	sysreg.Register("TinyQueue", func() sysreg.System { return tinySystem{} }, "tinyqueue")
}

func main() {
	sys, ok := sysreg.Lookup("tinyqueue")
	if !ok {
		log.Fatal("tinyqueue not registered")
	}
	rep, err := csnake.NewCampaign(sys,
		csnake.WithSeed(7),
		csnake.WithReps(3),
		csnake.WithDelayMagnitudes(200*time.Millisecond, time.Second),
	).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault space %d, edges %d, cycles %d\n", rep.Space.Size(), len(rep.Edges), len(rep.Cycles))
	for _, cy := range rep.Cycles {
		fmt.Printf("  cycle: %s\n", cy)
	}
	fmt.Printf("detected: %v\n", csnake.DetectedBugs(rep, sys.Bugs()))
	_ = inject.Profile() // the inject package is part of the public hook surface
}
