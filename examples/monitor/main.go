// monitor demonstrates the online cascade monitor: a campaign exports
// its causal-edge discoveries as a JSONL trace while it runs, and the
// monitor replays that stream through the incremental beam search,
// raising an alert the moment each self-sustaining cycle closes.
//
//	go run ./examples/monitor
//
// The example runs the fast MetaStore configuration (both seeded Raft
// storms detected in ~16 rounds) with trace export into memory, then
// streams the trace through a monitor in small batches -- the way
// `csnaked` ingests POSTed batches from a live harness -- and checks
// the online answer against the offline one:
//
//   - every cycle alert arrives as a "closed" event with the cycle's
//     rotation-invariant signature,
//   - the monitor's final signature set is identical to running the
//     offline beam search on the campaign's final graph,
//   - both seeded storms (RAFT-1 election loop, RAFT-2 snapshot storm)
//     appear among the alerted cycles.
//
// Streaming adds latency, never changes the answer.
package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core/beam"
	"repro/internal/core/csnake"
	"repro/internal/monitor"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/metastore"
)

func sigSet(cycles []beam.Cycle) []string {
	seen := make(map[string]bool, len(cycles))
	for _, c := range cycles {
		seen[c.Signature()] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func main() {
	sys, err := sysreg.Resolve("metastore")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("running the fast MetaStore campaign with trace export...")
	var trace bytes.Buffer
	rep, err := csnake.NewCampaign(sys,
		csnake.WithSeed(42),
		csnake.WithReps(3),
		csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second),
		csnake.WithEarlyStop(3),
		csnake.WithWaveSize(4),
		csnake.WithTraceExport(&trace),
	).Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	lines := bytes.Split(bytes.TrimRight(trace.Bytes(), "\n"), []byte("\n"))
	fmt.Printf("  %d rounds, %d trace records, %d cycles offline\n\n",
		len(rep.Rounds), len(lines), len(rep.Cycles))

	fmt.Println("replaying the trace through the online monitor (batches of 16):")
	alerted := make(map[string]bool)
	mon := monitor.New(monitor.Config{ // Window 0: retain everything
		OnAlert: func(a monitor.Alert) {
			fmt.Printf("  alert #%d %s: len=%d score=%.2f after %d records\n",
				a.Seq, a.Kind, a.Len, a.Score, a.Records)
			if a.Kind == "closed" {
				alerted[a.Signature] = true
			}
		},
	})
	for i := 0; i < len(lines); i += 16 {
		end := i + 16
		if end > len(lines) {
			end = len(lines)
		}
		batch := append(bytes.Join(lines[i:end], []byte("\n")), '\n')
		if _, err := mon.Ingest(bytes.NewReader(batch)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// The contract: online == offline, exactly.
	offline := sigSet(beam.SearchGraph(rep.Graph, nil, beam.Options{}))
	online := mon.Signatures()
	fmt.Printf("\noffline cycle signatures: %d, online: %d\n", len(offline), len(online))
	if len(online) != len(offline) {
		fmt.Fprintln(os.Stderr, "FAIL: online/offline signature sets differ in size")
		os.Exit(1)
	}
	for i := range offline {
		if online[i] != offline[i] {
			fmt.Fprintf(os.Stderr, "FAIL: signature mismatch:\n  online:  %s\n  offline: %s\n", online[i], offline[i])
			os.Exit(1)
		}
	}
	fmt.Println("online signature set is byte-identical to the offline beam search")

	// Both seeded storms must have alerted.
	storms := map[string]bool{"ms.node.election_loop": false, "ms.leader.snap.send_loop": false}
	for _, c := range mon.Cycles() {
		if !alerted[c.Signature()] {
			fmt.Fprintf(os.Stderr, "FAIL: active cycle never alerted: %s\n", c.Signature())
			os.Exit(1)
		}
		for _, f := range c.Faults() {
			if _, ok := storms[string(f)]; ok {
				storms[string(f)] = true
			}
		}
	}
	for f, seen := range storms {
		if !seen {
			fmt.Fprintf(os.Stderr, "FAIL: seeded storm %s missing from alerted cycles\n", f)
			os.Exit(1)
		}
	}
	fmt.Println("both seeded Raft storms (RAFT-1, RAFT-2) alerted during replay")

	st := mon.Stats()
	fmt.Printf("\nmonitor: records=%d skipped=%d edges=%d alerts=%d cycles=%d\n",
		st.Records, st.Skipped, st.Edges, st.Alerts, st.CyclesActive)
}
