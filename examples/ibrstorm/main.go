// ibrstorm reproduces the §8.3.2 case study: the bypassed-IBR-throttling
// self-sustaining cascading failure in the HDFS-like system (Table 3,
// HDFS2-6).
//
//	go run ./examples/ibrstorm
//
// The failure needs two conditions that never co-occur in a single test:
// a large namespace (so report-processing delays trip RPC timeouts) and
// IBR throttling (so a failed report retried at the next heartbeat is
// observably off-schedule). CSnake discovers one causal edge in each
// workload and stitches them into the cycle.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core/fca"
	"repro/internal/harness"
	"repro/internal/systems/dfs"
	"repro/internal/systems/sysreg"
)

func main() {
	sys := dfs.NewV2()
	space := sysreg.Space(sys)
	driver := harness.New(sys, space, harness.Config{
		Reps:            3,
		DelayMagnitudes: []time.Duration{time.Second, 2 * time.Second},
	})

	fmt.Println("experiment 1: delay NN IBR processing inside the 5000-block workload (t1)")
	intf1 := driver.Execute(dfs.PtNNIBRProcessLoop, "ibr_storm")
	fmt.Printf("  interference: %v\n", intf1)

	fmt.Println("experiment 2: inject the IBR RPC exception inside the throttled workload (t2)")
	intf2 := driver.Execute(dfs.PtDNIBRRPCIOE, "ibr_interval")
	fmt.Printf("  interference: %v\n", intf2)

	fmt.Println("\ndiscovered causal edges:")
	var delayToIOE, ioeToDelay bool
	for _, e := range driver.Edges() {
		fmt.Printf("  %s\n", e)
		if e.From == dfs.PtNNIBRProcessLoop && e.To == dfs.PtDNIBRRPCIOE {
			delayToIOE = true
		}
		if e.From == dfs.PtDNIBRRPCIOE && e.To == dfs.PtNNIBRProcessLoop {
			ioeToDelay = true
		}
	}
	_ = fca.Edge{}

	fmt.Println()
	if delayToIOE && ioeToDelay {
		fmt.Println("cycle closed: nn.ibr.process_loop -> dn.ibr.rpc_ioe -> nn.ibr.process_loop")
		fmt.Println("a report-processing slowdown breeds failed reports, whose unthrottled")
		fmt.Println("retries breed more report processing: a self-sustaining cascading failure.")
	} else {
		fmt.Println("cycle not closed under this light configuration; raise Reps/magnitudes.")
		os.Exit(1) // the CI example smoke treats a broken demonstration as a failure
	}
}
