// Quickstart: run a complete CSnake campaign against the HBase-like
// region store and print every self-sustaining cascading failure found.
//
//	go run ./examples/quickstart
//
// The campaign pipeline is exactly Figure 3 of the paper: profile runs ->
// 3PA-scheduled fault injection -> fault causality analysis -> local
// compatibility check -> parallel beam search -> clustered cycle report.
package main

import (
	"fmt"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/harness"
	"repro/internal/systems/kvstore"
)

func main() {
	sys := kvstore.New()

	cfg := csnake.DefaultConfig(42)
	// Light settings so the quickstart finishes in seconds; drop these
	// two lines for the paper-faithful 5 repetitions x 7 magnitudes.
	cfg.Harness = harness.Config{
		Reps:            3,
		DelayMagnitudes: []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second},
	}

	start := time.Now()
	rep := csnake.Run(sys, cfg)

	fmt.Printf("system      : %s\n", rep.System)
	fmt.Printf("fault space : %d injectable points\n", rep.Space.Size())
	fmt.Printf("experiments : %d (budget %dx|F|)\n", len(rep.Runs), cfg.BudgetFactor)
	fmt.Printf("causal edges: %d\n", len(rep.Edges))
	fmt.Printf("cycles      : %d raw, %d clusters\n", len(rep.Cycles), len(rep.CycleClusters))
	fmt.Printf("wall time   : %v\n\n", time.Since(start).Round(time.Millisecond))

	labeled := csnake.Label(rep, sys.Bugs())
	for _, lc := range labeled {
		tag := "candidate"
		if lc.Bug != "" {
			tag = "ground-truth " + lc.Bug
		}
		fmt.Printf("[%s]\n  %s\n", tag, lc.Cluster.Cycles[0])
	}
	fmt.Printf("\ndetected seeded bugs: %v\n", csnake.DetectedBugs(rep, sys.Bugs()))
}
