// Quickstart: run a complete CSnake campaign against the HBase-like
// region store and print every self-sustaining cascading failure found.
//
//	go run ./examples/quickstart
//
// The campaign pipeline is exactly Figure 3 of the paper: profile runs ->
// 3PA-scheduled fault injection -> fault causality analysis -> local
// compatibility check -> parallel beam search -> clustered cycle report.
//
// The target system comes from the sysreg registry (the kvstore package
// self-registers under "HBase"/"hbase" in init(), hence the blank
// import), and the campaign is configured through functional options.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/systems/sysreg"

	_ "repro/internal/systems/kvstore"
)

func main() {
	sys, ok := sysreg.Lookup("hbase")
	if !ok {
		log.Fatal("hbase not registered")
	}

	start := time.Now()
	rep, err := csnake.NewCampaign(sys,
		csnake.WithSeed(42),
		// Light settings so the quickstart finishes in seconds; drop these
		// two options for the paper-faithful 5 repetitions x 7 magnitudes.
		csnake.WithReps(3),
		csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second),
		// Fan simulation runs out across all cores; the result is
		// bit-identical to a serial campaign.
		csnake.WithParallelism(runtime.NumCPU()),
	).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system      : %s\n", rep.System)
	fmt.Printf("fault space : %d injectable points\n", rep.Space.Size())
	fmt.Printf("experiments : %d\n", len(rep.Runs))
	fmt.Printf("causal edges: %d\n", len(rep.Edges))
	fmt.Printf("cycles      : %d raw, %d clusters\n", len(rep.Cycles), len(rep.CycleClusters))
	fmt.Printf("simulations : %d\n", rep.Sims)
	fmt.Printf("wall time   : %v\n\n", time.Since(start).Round(time.Millisecond))

	labeled := csnake.Label(rep, sys.Bugs())
	for _, lc := range labeled {
		tag := "candidate"
		if lc.Bug != "" {
			tag = "ground-truth " + lc.Bug
		}
		fmt.Printf("[%s]\n  %s\n", tag, lc.Cluster.Cycles[0])
	}
	fmt.Printf("\ndetected seeded bugs: %v\n", csnake.DetectedBugs(rep, sys.Bugs()))
}
