// service walks through the csnaked campaign server as a client would
// use it, with the server running in-process on a loopback port: submit
// two MetaStore early-stop campaigns, watch the first one's rounds
// arrive over the SSE stream while it runs, read both machine-readable
// reports, and then merge the two persisted causal graphs server-side --
// re-searching the stitched evidence for cycles.
//
//	go run ./examples/service
//
// Everything shown here works identically against a standalone daemon
// (`go run ./cmd/csnaked`) with curl; see docs/API.md.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/service"

	_ "repro/internal/systems/metastore"
)

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "service example:", err)
		os.Exit(1)
	}
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	fatal(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	fatal(err)
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		fatal(fmt.Errorf("POST %s: %s: %s", url, resp.Status, msg))
	}
	fatal(json.NewDecoder(resp.Body).Decode(out))
}

func get(url string, out any) {
	resp, err := http.Get(url)
	fatal(err)
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		fatal(fmt.Errorf("GET %s: %s: %s", url, resp.Status, msg))
	}
	fatal(json.NewDecoder(resp.Body).Decode(out))
}

func spec(seed int64) map[string]any {
	return map[string]any{
		"system":            "metastore",
		"seed":              seed,
		"reps":              3,
		"delayMagnitudesMs": []int64{500, 2000, 8000},
		"earlyStopRounds":   3,
		"waveSize":          4,
	}
}

func main() {
	// An in-process server: the same handler `go run ./cmd/csnaked`
	// serves, on an ephemeral loopback port.
	m, err := service.NewManager(service.Config{Workers: 4, MaxJobs: 2})
	fatal(err)
	srv := httptest.NewServer(service.NewServer(m))
	defer srv.Close()
	fmt.Printf("csnaked serving at %s\n\n", srv.URL)

	// Submit the first campaign and follow its SSE stream: rounds arrive
	// while the campaign is still running, the terminal state event ends
	// the stream.
	var sub service.SubmitResponse
	post(srv.URL+"/v1/campaigns", spec(42), &sub)
	fmt.Printf("submitted %s (MetaStore, early stop after 3 stable rounds)\n", sub.ID)

	stream, err := http.Get(srv.URL + "/v1/campaigns/" + sub.ID + "/events")
	fatal(err)
	sc := bufio.NewScanner(stream.Body)
	var data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			continue
		}
		if line != "" || data == "" {
			continue
		}
		var ev service.Event
		fatal(json.Unmarshal([]byte(data), &ev))
		data = ""
		if ev.Type == "round" {
			r := ev.Round
			fmt.Printf("  round %2d: %3d/%d budget, +%2d edges, %5d cycles, %d clusters, detected %v\n",
				r.Round, r.Spent, r.Budget, r.NewEdges, r.Cycles, r.Clusters, r.Detected)
			continue
		}
		fmt.Printf("  %s -> %s\n\n", ev.Job, ev.State)
		break
	}
	stream.Body.Close()

	// A second campaign with a different seed, awaited by polling -- the
	// other way to follow a job.
	var sub2 service.SubmitResponse
	post(srv.URL+"/v1/campaigns", spec(43), &sub2)
	st2, err := m.Await(sub2.ID)
	fatal(err)
	fmt.Printf("submitted %s (seed 43): %s after %d sims\n\n", sub2.ID, st2.State, st2.Sims)

	// Both reports use the same schema `csnake -json` prints.
	var g1, g2 string
	for _, id := range []string{sub.ID, sub2.ID} {
		var rep struct {
			DetectedBugs []string `json:"detectedBugs"`
			Sims         int      `json:"sims"`
			Edges        int      `json:"edges"`
			GraphID      string
		}
		get(srv.URL+"/v1/campaigns/"+id+"/report", &rep)
		var st service.JobStatus
		get(srv.URL+"/v1/campaigns/"+id, &st)
		fmt.Printf("%s report: %d sims, %d edges, detected %v, graph %s\n",
			id, rep.Sims, rep.Edges, rep.DetectedBugs, st.GraphID)
		if id == sub.ID {
			g1 = st.GraphID
		} else {
			g2 = st.GraphID
		}
	}

	// Server-side merge: stitch both campaigns' graphs and re-search the
	// combined evidence.
	var merged service.MergeResponse
	post(srv.URL+"/v1/graphs/merge", service.MergeRequest{Graphs: []string{g1, g2}, Research: true}, &merged)
	fmt.Printf("\nmerged %s + %s -> %s: %d edges, %d cycles, %d clusters\n",
		g1, g2, merged.Graph.ID, merged.Graph.Edges, merged.Cycles, len(merged.Clusters))

	var health struct {
		Metrics service.Metrics `json:"metrics"`
	}
	get(srv.URL+"/healthz", &health)
	fmt.Printf("daemon totals: %d jobs succeeded, %d sims, %d rounds, %d graphs stored\n",
		health.Metrics.JobsSucceeded, health.Metrics.SimsTotal,
		health.Metrics.RoundsTotal, health.Metrics.GraphsStored)

	if len(merged.Clusters) == 0 || health.Metrics.JobsSucceeded != 2 {
		fmt.Fprintln(os.Stderr, "walkthrough did not complete as expected")
		os.Exit(1)
	}
	fmt.Println("\nOK: jobs, streaming, reports, and server-side graph merge all working")
}
