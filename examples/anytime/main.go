// anytime demonstrates the round-based streaming pipeline on the
// MetaStore consensus target: instead of spending the whole 3PA budget
// before the first cycle search, the campaign executes experiment waves,
// folds each wave's causal-graph delta into an incremental beam search,
// and stops as soon as the clustered cycle set has been stable for three
// consecutive rounds (WithEarlyStop(3)).
//
//	go run ./examples/anytime
//
// The walkthrough prints the round at which each seeded storm -- RAFT-1
// (election loop) and RAFT-2 (snapshot storm) -- was first detected, and
// how much of the experiment budget the early stop left unspent. Both
// storms surface well before the budget runs out: exactly the
// budget-sensitivity observation that motivates anytime campaigns.
package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core/csnake"
	"repro/internal/systems/metastore"
)

func main() {
	sys := metastore.New()
	fmt.Println("anytime campaign against MetaStore: waves of 4 experiments, early stop")
	fmt.Println("after 3 stable rounds, incremental cycle search after every wave")
	fmt.Println()

	rep, err := csnake.NewCampaign(sys,
		csnake.WithSeed(42),
		csnake.WithReps(3),
		csnake.WithDelayMagnitudes(500*time.Millisecond, 2*time.Second, 8*time.Second),
		csnake.WithParallelism(runtime.NumCPU()),
		csnake.WithEarlyStop(3),
		csnake.WithWaveSize(4),
	).Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}

	firstSeen := map[string]int{}
	for _, r := range rep.Rounds {
		for _, lc := range csnake.LabelClusters(r.Clusters, sys.Bugs()) {
			if lc.Bug != "" {
				if _, ok := firstSeen[lc.Bug]; !ok {
					firstSeen[lc.Bug] = r.Round
				}
			}
		}
		fmt.Printf("round %2d (phase %d): %3d/%d budget, +%2d edges, %5d cycles, %2d clusters\n",
			r.Round, r.Phase, r.Spent, r.Budget, r.NewEdges, r.CycleCount, len(r.Clusters))
	}
	fmt.Println()

	ok := true
	for _, bug := range []string{"RAFT-1", "RAFT-2"} {
		if round, found := firstSeen[bug]; found {
			fmt.Printf("%s first detected in round %d\n", bug, round)
		} else {
			fmt.Printf("%s NOT detected\n", bug)
			ok = false
		}
	}

	last := rep.Rounds[len(rep.Rounds)-1]
	if rep.EarlyStopped {
		saved := last.Budget - last.Spent
		fmt.Printf("early stop after round %d: %d of %d budgeted experiments never ran (%.0f%% saved)\n",
			last.Round, saved, last.Budget, 100*float64(saved)/float64(last.Budget))
	} else {
		fmt.Println("campaign ran its full budget (no early stop)")
		ok = false
	}
	if !ok {
		os.Exit(1) // the CI example smoke treats a broken demonstration as a failure
	}
}
