// regionstorm reproduces the §8.3.1 case study (Figure 7): the HBase-like
// region-deployment-retry cascade (Table 3, HBASE-2), whose three causal
// steps live in three different workloads:
//
//	t1  create_clone_storm : a delayed deployment loop overloads the
//	                         cluster and region-assignment RPCs throw IOEs
//	t2  rs_fault_tolerance : an assignment IOE excludes a RegionServer;
//	                         with 3 servers the favored balancer's
//	                         canPlaceFavoredNodes turns false
//	t3  balancer_long      : a failing balancer makes the assignment
//	                         manager retry blindly, re-inflating the
//	                         deployment loop
//
//	go run ./examples/regionstorm
package main

import (
	"fmt"
	"time"

	"repro/internal/harness"
	"repro/internal/systems/kvstore"
	"repro/internal/systems/sysreg"
)

func main() {
	sys := kvstore.New()
	driver := harness.New(sys, sysreg.Space(sys), harness.Config{
		Reps:            3,
		DelayMagnitudes: []time.Duration{2 * time.Second, 4 * time.Second},
	})

	fmt.Println("t1: delay the region deployment loop in the create/clone storm")
	fmt.Printf("  interference: %v\n", driver.Execute(kvstore.PtDeployLoop, "create_clone_storm"))

	fmt.Println("t2: inject the assignment IOE in the 3-server fault-tolerance test")
	fmt.Printf("  interference: %v\n", driver.Execute(kvstore.PtAssignIOE, "rs_fault_tolerance"))

	fmt.Println("t3: negate canPlaceFavoredNodes in the long balancer soak")
	fmt.Printf("  interference: %v\n", driver.Execute(kvstore.PtCanPlace, "balancer_long"))

	fmt.Println("\ndiscovered causal edges:")
	for _, e := range driver.Edges() {
		fmt.Printf("  %s\n", e)
	}

	fmt.Println("\nfoil: the same IOE injection on a 5-server cluster leaves the balancer")
	fmt.Println("healthy, so no edge into the negation is discovered there:")
	fmt.Printf("  interference in balancer_5rs: %v\n", driver.Execute(kvstore.PtAssignIOE, "balancer_5rs"))
}
