// electionstorm reproduces the Raft election-loop storm seeded in the
// MetaStore-like consensus target (Table 3, RAFT-1): the control-plane
// cascade where timeouts and elections feed each other.
//
//	go run ./examples/electionstorm
//
// The cycle's two halves live in two different workloads, so no single
// test exposes the storm:
//
//	t1  slow_follower_catchup : delaying the catch-up batch loop (a slow
//	                            follower) monopolizes the leader's
//	                            replication round; healthy followers miss
//	                            heartbeats and the staleness detector
//	                            fires -- catchup/election -> hb_fresh
//	t2  leader_transfer       : delaying the election loop after a planned
//	                            leadership transfer leaves the cluster
//	                            leaderless past the timeout; negating the
//	                            staleness detector turns every timer tick
//	                            into a campaign -- hb_fresh -> election
//
// CSnake discovers one causal edge in each experiment and stitches them
// into the self-sustaining cycle.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/systems/metastore"
	"repro/internal/systems/sysreg"
)

func main() {
	sys := metastore.New()
	driver := harness.New(sys, sysreg.Space(sys), harness.Config{
		Reps:            3,
		DelayMagnitudes: []time.Duration{2 * time.Second, 8 * time.Second},
	})

	fmt.Println("t1: delay the catch-up batch loop while a follower lags (slow_follower_catchup)")
	fmt.Printf("  interference: %v\n", driver.Execute(metastore.PtCatchupLoop, "slow_follower_catchup"))

	fmt.Println("t2: delay the election loop across planned leadership transfers (leader_transfer)")
	fmt.Printf("  interference: %v\n", driver.Execute(metastore.PtElectionLoop, "leader_transfer"))

	fmt.Println("t3: negate the heartbeat-freshness detector (slow_follower_catchup)")
	fmt.Printf("  interference: %v\n", driver.Execute(metastore.PtHBFresh, "slow_follower_catchup"))

	fmt.Println("\ndiscovered causal edges:")
	var intoFresh, outOfFresh bool
	for _, e := range driver.Edges() {
		fmt.Printf("  %s\n", e)
		if e.To == metastore.PtHBFresh {
			intoFresh = true
		}
		if e.From == metastore.PtHBFresh && e.To == metastore.PtElectionLoop {
			outOfFresh = true
		}
	}

	fmt.Println()
	if intoFresh && outOfFresh {
		fmt.Println("cycle closed: replication load -> heartbeat staleness -> elections -> replication load")
		fmt.Println("every new leader inherits a cluster that is further behind, and client retries")
		fmt.Println("of timed-out proposals duplicate entries: the load that caused the election")
		fmt.Println("grows because of it -- a self-sustaining cascading failure.")
	} else {
		fmt.Println("cycle not closed under this light configuration; raise Reps/magnitudes.")
		os.Exit(1) // the CI example smoke treats a broken demonstration as a failure
	}
}
